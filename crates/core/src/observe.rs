//! The flight recorder: epoch-sliced time-series counters, a typed
//! structured event trace, and per-bank/per-set occupancy heatmaps.
//!
//! The paper's evaluation is temporal — inclusion-victim pressure, ZIV
//! relocations, and directory back-invalidations all vary across program
//! phases — but [`Metrics`](crate::Metrics) only reports end-of-run
//! aggregates. This module adds the missing interval-resolved layer:
//!
//! * [`EpochSlicer`] — snapshots *delta* counters every N accesses into
//!   an ordered series of [`EpochSample`]s. Deltas are signed: the
//!   driver rewinds per-core counters to the last completed trace lap
//!   when a run finishes, so the closing sample can carry negative
//!   per-core deltas. By construction the column-wise sum of all
//!   samples equals the final aggregate `Metrics` exactly (the
//!   conservation property the tests pin).
//! * [`EventRing`] — a fixed-capacity ring buffer of typed
//!   [`TraceEvent`]s (fill, eviction, back-invalidation, relocation,
//!   directory victim, audit violation). The ring keeps the *last* K
//!   events, flight-recorder style, so a failed run retains the events
//!   leading up to the violation.
//! * [`Heatmap`] — per-(bank, set) access/eviction/relocation counts
//!   for spotting hot sets.
//!
//! Everything here is opt-in via [`ObserveConfig`]; with the default
//! (disabled) config the hierarchy carries a `None` recorder and the
//! hot path pays a single branch per potential event.

use crate::forensics::{ForensicsObservatory, ForensicsReport};
use crate::latency::{LatencyObservatory, LatencyReport};
use crate::leakage::{LeakageObservatory, LeakageReport};
use crate::metrics::{core_metrics_u64_fields, metrics_u64_fields, CoreMetrics, Metrics};
use crate::profile::ProfileReport;
use ziv_common::json::JsonValue;
use ziv_common::stats::CountGrid;
use ziv_common::{AuditViolation, Cycle, SimError};

macro_rules! name_array {
    ($($f:ident),*) => { &[$(stringify!($f)),*] };
}

macro_rules! value_vec {
    ($src:expr => $($f:ident),*) => { vec![$(($src).$f),*] };
}

/// Column names of the global scalar counters, in the exact order
/// [`metrics_scalars`] (and every [`EpochSample::global`]) uses —
/// generated from the same macro as the ledger JSON serializer.
pub const METRICS_COLUMNS: &[&str] = metrics_u64_fields!(name_array!());

/// Column names of the per-core scalar counters, in the exact order
/// [`core_metrics_scalars`] (and every [`EpochSample::per_core`] row)
/// uses.
pub const CORE_METRICS_COLUMNS: &[&str] = core_metrics_u64_fields!(name_array!());

/// Every scalar `u64` counter of [`Metrics`], ordered as
/// [`METRICS_COLUMNS`].
pub fn metrics_scalars(m: &Metrics) -> Vec<u64> {
    metrics_u64_fields!(value_vec!(m =>))
}

/// Every scalar `u64` counter of [`CoreMetrics`], ordered as
/// [`CORE_METRICS_COLUMNS`].
pub fn core_metrics_scalars(c: &CoreMetrics) -> Vec<u64> {
    core_metrics_u64_fields!(value_vec!(c =>))
}

fn column_index(columns: &[&str], name: &str) -> usize {
    columns
        .iter()
        .position(|&c| c == name)
        .unwrap_or_else(|| panic!("unknown column '{name}'"))
}

// ---------------------------------------------------------------------------
// Epoch slicing
// ---------------------------------------------------------------------------

/// Counter deltas over one epoch (a half-open access-index interval
/// `start_access..end_access`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSample {
    /// 0-based epoch number.
    pub index: u64,
    /// First access index covered (inclusive).
    pub start_access: u64,
    /// Last access index covered (exclusive). A closing sample emitted
    /// by [`EpochSlicer::finish`] may have `start_access ==
    /// end_access`: it carries the end-of-run lap rewind and
    /// finalization adjustments, not new accesses.
    pub end_access: u64,
    /// Signed deltas of the global scalar counters, ordered as
    /// [`METRICS_COLUMNS`].
    pub global: Vec<i64>,
    /// Signed per-core deltas, ordered as [`CORE_METRICS_COLUMNS`].
    /// Only the closing sample can go negative (the driver rewinds
    /// per-core counters to the last completed trace lap).
    pub per_core: Vec<Vec<i64>>,
}

impl EpochSample {
    /// Instructions-per-cycle for `core` over this epoch; zero when the
    /// epoch accumulated no cycles for the core.
    pub fn core_ipc(&self, core: usize) -> f64 {
        let instr_col = column_index(CORE_METRICS_COLUMNS, "instructions");
        let cycle_col = column_index(CORE_METRICS_COLUMNS, "cycles");
        let Some(row) = self.per_core.get(core) else {
            return 0.0;
        };
        let cycles = row[cycle_col];
        if cycles <= 0 {
            0.0
        } else {
            row[instr_col] as f64 / cycles as f64
        }
    }

    /// Delta of a named global counter; `None` for an unknown name.
    pub fn global_delta(&self, name: &str) -> Option<i64> {
        let i = METRICS_COLUMNS.iter().position(|&c| c == name)?;
        self.global.get(i).copied()
    }
}

/// Accumulates [`EpochSample`]s from successive metric snapshots.
///
/// The driver calls [`EpochSlicer::slice`] whenever
/// [`EpochSlicer::due`] reports a boundary, and
/// [`EpochSlicer::finish`] once after the run's end-of-trace rewind and
/// finalization, which closes the series so the samples telescope to
/// the final aggregate metrics.
#[derive(Debug)]
pub struct EpochSlicer {
    epoch_len: u64,
    next_boundary: u64,
    prev_global: Vec<u64>,
    prev_core: Vec<Vec<u64>>,
    last_end: u64,
    samples: Vec<EpochSample>,
}

impl EpochSlicer {
    /// Creates a slicer emitting one sample per `epoch_len` accesses
    /// (clamped to at least 1) for a `cores`-core run.
    pub fn new(epoch_len: u64, cores: usize) -> Self {
        let epoch_len = epoch_len.max(1);
        EpochSlicer {
            epoch_len,
            next_boundary: epoch_len,
            prev_global: vec![0; METRICS_COLUMNS.len()],
            prev_core: vec![vec![0; CORE_METRICS_COLUMNS.len()]; cores],
            last_end: 0,
            samples: Vec::new(),
        }
    }

    /// The configured epoch length in accesses.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// True when `issued` accesses have crossed the next boundary.
    #[inline]
    pub fn due(&self, issued: u64) -> bool {
        issued >= self.next_boundary
    }

    /// Emits the sample covering `last boundary .. issued` and arms the
    /// next boundary.
    pub fn slice(&mut self, issued: u64, m: &Metrics) {
        self.push_sample(issued, m);
        self.next_boundary = issued.saturating_add(self.epoch_len);
    }

    /// Emits the closing sample after end-of-run adjustments (per-core
    /// lap rewind, finalization), unless nothing changed since the last
    /// boundary — e.g. the previous slice landed exactly at
    /// end-of-trace *and* no adjustment moved any counter.
    pub fn finish(&mut self, issued: u64, m: &Metrics) {
        let changed = issued > self.last_end
            || metrics_scalars(m) != self.prev_global
            || m.per_core
                .iter()
                .zip(&self.prev_core)
                .any(|(c, p)| core_metrics_scalars(c) != *p);
        if changed {
            self.push_sample(issued.max(self.last_end), m);
        }
    }

    fn push_sample(&mut self, end: u64, m: &Metrics) {
        let global_now = metrics_scalars(m);
        let global = global_now
            .iter()
            .zip(&self.prev_global)
            .map(|(&now, &prev)| now as i64 - prev as i64)
            .collect();
        let per_core = m
            .per_core
            .iter()
            .zip(&self.prev_core)
            .map(|(c, prev)| {
                core_metrics_scalars(c)
                    .iter()
                    .zip(prev)
                    .map(|(&now, &p)| now as i64 - p as i64)
                    .collect()
            })
            .collect();
        self.samples.push(EpochSample {
            index: self.samples.len() as u64,
            start_access: self.last_end,
            end_access: end,
            global,
            per_core,
        });
        self.prev_global = global_now;
        for (prev, c) in self.prev_core.iter_mut().zip(&m.per_core) {
            *prev = core_metrics_scalars(c);
        }
        self.last_end = end;
    }

    /// The samples emitted so far.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// Consumes the slicer, yielding the sample series.
    pub fn into_samples(self) -> Vec<EpochSample> {
        self.samples
    }
}

// ---------------------------------------------------------------------------
// Structured events
// ---------------------------------------------------------------------------

/// The typed events the flight recorder understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A block filled into the LLC (demand or prefetch).
    Fill = 0,
    /// A block evicted from the LLC (capacity or relocation-set).
    Eviction = 1,
    /// A private copy invalidated because its LLC copy was evicted —
    /// one event per victimized core (includes ECI early invalidations).
    BackInvalidation = 2,
    /// A ZIV relocation moved a block into a relocation set.
    Relocation = 3,
    /// A sparse-directory entry evicted from the finite structure
    /// (MESI mode), back-invalidating its sharers.
    DirectoryVictim = 4,
    /// The invariant auditor rejected the run.
    AuditViolation = 5,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 6] = [
        EventKind::Fill,
        EventKind::Eviction,
        EventKind::BackInvalidation,
        EventKind::Relocation,
        EventKind::DirectoryVictim,
        EventKind::AuditViolation,
    ];

    /// Stable lowercase label, used by the JSONL schema and the
    /// `--events` filter syntax.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Fill => "fill",
            EventKind::Eviction => "eviction",
            EventKind::BackInvalidation => "back_invalidation",
            EventKind::Relocation => "relocation",
            EventKind::DirectoryVictim => "directory_victim",
            EventKind::AuditViolation => "audit_violation",
        }
    }

    /// Parses a [`EventKind::label`] string (also accepts `-` for `_`).
    pub fn parse(s: &str) -> Option<EventKind> {
        let s = s.trim().replace('-', "_");
        EventKind::ALL.into_iter().find(|k| k.label() == s)
    }

    #[inline]
    fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// A bitmask of [`EventKind`]s the recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFilter(u8);

impl EventFilter {
    /// Keeps every kind.
    pub const fn all() -> Self {
        EventFilter(0x3f)
    }

    /// Keeps nothing.
    pub const fn none() -> Self {
        EventFilter(0)
    }

    /// Returns a filter that also keeps `kind`.
    #[must_use]
    pub fn with(self, kind: EventKind) -> Self {
        EventFilter(self.0 | kind.bit())
    }

    /// True when `kind` passes the filter.
    #[inline]
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Parses `"all"` or a comma-separated list of kind labels
    /// (e.g. `"fill,eviction,back_invalidation"`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the first unknown kind and
    /// the accepted set, or rejecting an empty filter.
    pub fn parse(spec: &str) -> Result<Self, SimError> {
        if spec.trim() == "all" {
            return Ok(EventFilter::all());
        }
        let mut f = EventFilter::none();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let kind = EventKind::parse(part).ok_or_else(|| {
                SimError::Config(format!(
                    "unknown event kind '{part}' (expected one of: {})",
                    EventKind::ALL.map(EventKind::label).join(", ")
                ))
            })?;
            f = f.with(kind);
        }
        if f == EventFilter::none() {
            return Err(SimError::Config("empty event filter".into()));
        }
        Ok(f)
    }

    /// The filter rendered back into [`EventFilter::parse`] syntax.
    pub fn label(self) -> String {
        if self == EventFilter::all() {
            return "all".into();
        }
        EventKind::ALL
            .into_iter()
            .filter(|&k| self.contains(k))
            .map(EventKind::label)
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl Default for EventFilter {
    fn default() -> Self {
        EventFilter::all()
    }
}

/// One recorded event. Location fields are `None` when they do not
/// apply to the kind (e.g. a directory victim has no LLC way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// 0-based index of the access during which the event occurred.
    pub access_index: u64,
    /// Simulation clock at the event.
    pub cycle: Cycle,
    /// The cache line involved (raw line address).
    pub line: u64,
    /// The core affected (victim core for back-invalidations).
    pub core: Option<u16>,
    /// LLC / directory bank.
    pub bank: Option<u16>,
    /// LLC set within the bank.
    pub set: Option<u32>,
    /// LLC way within the set.
    pub way: Option<u8>,
}

impl TraceEvent {
    /// Serializes the event as a JSON object; `None` fields are
    /// omitted.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("kind".to_string(), JsonValue::Str(self.kind.label().into())),
            ("access".to_string(), JsonValue::u64(self.access_index)),
            ("cycle".to_string(), JsonValue::u64(self.cycle)),
            ("line".to_string(), JsonValue::u64(self.line)),
        ];
        if let Some(c) = self.core {
            fields.push(("core".to_string(), JsonValue::u64(c as u64)));
        }
        if let Some(b) = self.bank {
            fields.push(("bank".to_string(), JsonValue::u64(b as u64)));
        }
        if let Some(s) = self.set {
            fields.push(("set".to_string(), JsonValue::u64(s as u64)));
        }
        if let Some(w) = self.way {
            fields.push(("way".to_string(), JsonValue::u64(w as u64)));
        }
        JsonValue::Obj(fields)
    }

    /// Rebuilds an event from [`TraceEvent::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let kind_label = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field 'kind'")?;
        let kind =
            EventKind::parse(kind_label).ok_or_else(|| format!("unknown kind '{kind_label}'"))?;
        let req = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing u64 field '{key}'"))
        };
        let opt = |key: &str| v.get(key).and_then(JsonValue::as_u64);
        Ok(TraceEvent {
            kind,
            access_index: req("access")?,
            cycle: req("cycle")?,
            line: req("line")?,
            core: opt("core").map(|c| c as u16),
            bank: opt("bank").map(|b| b as u16),
            set: opt("set").map(|s| s as u32),
            way: opt("way").map(|w| w as u8),
        })
    }
}

/// Default ring capacity when tracing is enabled without an explicit
/// `--last K`.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Largest ring capacity the CLI accepts for `--last K`. The ring is
/// allocated up front, so an absurd K would pin memory for the whole
/// run; the CLI clamps to this and warns on the sink.
pub const MAX_EVENT_CAPACITY: usize = 1 << 20;

/// A fixed-capacity ring buffer keeping the **last** `capacity` events.
///
/// The buffer is allocated once at construction; pushes never allocate,
/// preserving the allocation-free hot path.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    head: usize,
    recorded: u64,
}

impl EventRing {
    /// Creates an empty ring with room for `capacity` events (clamped
    /// to at least 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            recorded: 0,
        }
    }

    /// Appends an event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
        }
        self.recorded += 1;
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retained events, oldest first.
    pub fn ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

// ---------------------------------------------------------------------------
// Heatmaps
// ---------------------------------------------------------------------------

/// Per-(bank, set) occupancy counters: LLC accesses, evictions, and
/// relocations, each a `banks × sets` [`CountGrid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    /// LLC lookups homed at (bank, set).
    pub accesses: CountGrid,
    /// LLC evictions out of (bank, set).
    pub evictions: CountGrid,
    /// ZIV relocations into (bank, set).
    pub relocations: CountGrid,
}

impl Heatmap {
    /// Creates zeroed grids for a `banks`-bank LLC with `sets` sets per
    /// bank.
    pub fn new(banks: usize, sets: usize) -> Self {
        Heatmap {
            accesses: CountGrid::new(banks, sets),
            evictions: CountGrid::new(banks, sets),
            relocations: CountGrid::new(banks, sets),
        }
    }

    /// Number of LLC banks (grid rows).
    pub fn banks(&self) -> usize {
        self.accesses.rows()
    }

    /// Number of sets per bank (grid columns).
    pub fn sets(&self) -> usize {
        self.accesses.cols()
    }
}

// ---------------------------------------------------------------------------
// Configuration and the recorder itself
// ---------------------------------------------------------------------------

/// Event-trace settings: how many trailing events to keep and which
/// kinds to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventTraceConfig {
    /// Ring capacity (`--last K`).
    pub capacity: usize,
    /// Which kinds to retain (`--events <filter>`).
    pub filter: EventFilter,
}

impl Default for EventTraceConfig {
    fn default() -> Self {
        EventTraceConfig {
            capacity: DEFAULT_EVENT_CAPACITY,
            filter: EventFilter::all(),
        }
    }
}

/// What to observe during a run. The default observes nothing and the
/// simulation hot path stays branch-only.
///
/// Observability settings never enter run-spec digests or the result
/// ledger: enabling any of this must not perturb simulation outcomes,
/// only record them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObserveConfig {
    /// Emit an [`EpochSample`] every this many accesses.
    pub epoch: Option<u64>,
    /// Record typed events into a ring buffer.
    pub events: Option<EventTraceConfig>,
    /// Accumulate per-(bank, set) occupancy heatmaps.
    pub heatmap: bool,
    /// Run the latency attribution observatory (`--latency`):
    /// per-core × per-class cycle breakdowns, per-class latency
    /// histograms, and inclusion-victim re-fetch tracking.
    pub latency: bool,
    /// Run the wall-clock self-profiler (`--profile`): per-subsystem
    /// simulator time.
    pub profile: bool,
    /// Run the leakage observatory (`--leakage`): attacker-observable
    /// back-invalidation and probe-distinguishability accounting.
    /// Only attack workloads (which carry role plans) produce a
    /// report; the flag is inert for every other workload.
    pub leakage: bool,
    /// Run the forensics observatory (`--forensics`): per-line
    /// allocation provenance, causal eviction chains, and the
    /// instigator × victim blame matrix.
    pub forensics: bool,
}

impl ObserveConfig {
    /// The default: observe nothing.
    pub const fn disabled() -> Self {
        ObserveConfig {
            epoch: None,
            events: None,
            heatmap: false,
            latency: false,
            profile: false,
            leakage: false,
            forensics: false,
        }
    }

    /// True when the hierarchy needs an attached [`FlightRecorder`]
    /// (events, heatmaps, latency attribution, leakage accounting, or
    /// forensics; epoch slicing and the self-profiler live in the
    /// driver).
    pub fn wants_recorder(&self) -> bool {
        self.events.is_some() || self.heatmap || self.latency || self.leakage || self.forensics
    }

    /// True when any observation is requested.
    pub fn is_enabled(&self) -> bool {
        self.epoch.is_some() || self.wants_recorder() || self.profile
    }
}

/// The in-flight recorder attached to a
/// [`CacheHierarchy`](crate::CacheHierarchy): an event ring and/or
/// heatmap grids. Constructed only when enabled, so the disabled-mode
/// hierarchy carries `None` and pays one branch per emission site.
#[derive(Debug)]
pub struct FlightRecorder {
    filter: EventFilter,
    events: Option<EventRing>,
    heatmap: Option<Heatmap>,
    latency: Option<LatencyObservatory>,
    leakage: Option<LeakageObservatory>,
    forensics: Option<ForensicsObservatory>,
}

impl FlightRecorder {
    /// Builds a recorder per `cfg` for a `cores`-core system with a
    /// `banks × sets` LLC; `None` when `cfg` requests no recorder-side
    /// capture (events, heatmaps, or latency attribution).
    pub fn new(
        cfg: &ObserveConfig,
        cores: usize,
        banks: usize,
        sets: usize,
    ) -> Option<Box<FlightRecorder>> {
        if !cfg.wants_recorder() {
            return None;
        }
        Some(Box::new(FlightRecorder {
            filter: cfg.events.map_or(EventFilter::none(), |e| e.filter),
            events: cfg.events.map(|e| EventRing::new(e.capacity)),
            heatmap: cfg.heatmap.then(|| Heatmap::new(banks, sets)),
            latency: cfg.latency.then(|| LatencyObservatory::new(cores)),
            // Leakage accounting needs the workload's attack roles, which
            // the recorder cannot know; the driver attaches it when the
            // flag is on *and* the workload carries an attack plan.
            leakage: None,
            forensics: cfg
                .forensics
                .then(|| ForensicsObservatory::new(cores, banks, sets)),
        }))
    }

    /// Attaches the leakage observatory (driver-side; see
    /// [`FlightRecorder::new`]).
    pub fn attach_leakage(&mut self, obs: LeakageObservatory) {
        self.leakage = Some(obs);
    }

    /// Records `ev` if event tracing is on and the filter keeps its
    /// kind.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if self.filter.contains(ev.kind) {
            if let Some(ring) = &mut self.events {
                ring.push(ev);
            }
        }
    }

    /// Records the auditor's verdict as a trace event.
    pub fn record_violation(&mut self, v: &AuditViolation, cycle: Cycle) {
        self.record(TraceEvent {
            kind: EventKind::AuditViolation,
            access_index: v.access_index,
            cycle,
            line: v.line.map_or(0, |l| l.raw()),
            core: None,
            bank: None,
            set: None,
            way: None,
        });
    }

    /// The heatmap grids, when enabled.
    #[inline]
    pub fn heatmap_mut(&mut self) -> Option<&mut Heatmap> {
        self.heatmap.as_mut()
    }

    /// The latency observatory, when enabled.
    #[inline]
    pub fn latency_mut(&mut self) -> Option<&mut LatencyObservatory> {
        self.latency.as_mut()
    }

    /// The leakage observatory, when attached.
    #[inline]
    pub fn leakage_mut(&mut self) -> Option<&mut LeakageObservatory> {
        self.leakage.as_mut()
    }

    /// The forensics observatory, when enabled.
    #[inline]
    pub fn forensics_mut(&mut self) -> Option<&mut ForensicsObservatory> {
        self.forensics.as_mut()
    }

    /// Drains the recorder into its final observation payload:
    /// `(events oldest-first, total events recorded, heatmap, latency,
    /// leakage, forensics)`.
    #[allow(clippy::type_complexity)]
    pub fn finish(
        self,
    ) -> (
        Vec<TraceEvent>,
        u64,
        Option<Heatmap>,
        Option<LatencyReport>,
        Option<LeakageReport>,
        Option<ForensicsReport>,
    ) {
        let (events, recorded) = match &self.events {
            Some(ring) => (ring.ordered(), ring.recorded()),
            None => (Vec::new(), 0),
        };
        (
            events,
            recorded,
            self.heatmap,
            self.latency.map(LatencyObservatory::finish),
            self.leakage.map(LeakageObservatory::finish),
            self.forensics.map(ForensicsObservatory::finish),
        )
    }
}

/// Everything one traced run observed. Deliberately kept **out of**
/// `RunResult`: observations never enter the result ledger, so traced
/// and untraced campaigns stay byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct Observations {
    /// The epoch time-series (empty when epoch slicing was off).
    pub epochs: Vec<EpochSample>,
    /// Retained trailing events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Total events recorded, including ones the ring overwrote.
    pub events_recorded: u64,
    /// Occupancy heatmaps, when enabled.
    pub heatmap: Option<Heatmap>,
    /// The latency attribution report, when `--latency` was on.
    pub latency: Option<LatencyReport>,
    /// The self-profiler's per-subsystem wall time, when `--profile`
    /// was on.
    pub profile: Option<ProfileReport>,
    /// The leakage report, when `--leakage` was on and the workload
    /// carried an attack plan.
    pub leakage: Option<LeakageReport>,
    /// The forensics report (provenance, chains, blame matrix), when
    /// `--forensics` was on.
    pub forensics: Option<ForensicsReport>,
    /// End-of-run per-bank occupancy of the sparse directory's finite
    /// structure (spill entries excluded) — the directory-pressure
    /// summary printed by `zivsim trace`.
    pub dir_slice_occupancy: Vec<usize>,
}

impl Observations {
    /// True when nothing at all was observed (the end-of-run directory
    /// summary alone does not count — it is always captured).
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
            && self.events.is_empty()
            && self.heatmap.is_none()
            && self.latency.is_none()
            && self.profile.is_none()
            && self.leakage.is_none()
            && self.forensics.is_none()
    }
}

/// A point-in-time progress sample published from the driver's hot loop
/// to a [`TelemetryProbe`].
///
/// All values are cheap running totals the driver already maintains; the
/// probe implementation (the harness's shared-memory worker record)
/// stores them with relaxed atomics under a seqlock, so publishing costs
/// a handful of word stores — no locks, no allocation, no syscalls.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProbeSnapshot {
    /// 0-based global index of the access just issued.
    pub access_index: u64,
    /// Instructions retired, summed over cores.
    pub instructions: u64,
    /// Cycles elapsed (max over core clocks, rounded down).
    pub cycles: u64,
    /// LLC accesses so far.
    pub llc_accesses: u64,
    /// LLC misses so far.
    pub llc_misses: u64,
    /// Inclusion victims so far.
    pub inclusion_victims: u64,
    /// ZIV relocations so far.
    pub relocations: u64,
    /// Sampling stratum code (0 = full-detail run; the sampling driver
    /// publishes its phase: 1 head, 2 skip, 3 warm, 4 timed).
    pub stratum: u64,
}

/// Sampling-convergence state published at each interval close.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SamplingProgress {
    /// Closed measurement intervals so far.
    pub intervals: u64,
    /// Running mean of per-interval IPC.
    pub ipc_mean: f64,
    /// Half-width of the running IPC confidence interval (0 until at
    /// least two intervals have closed).
    pub ipc_half_width: f64,
}

/// Live-telemetry publication hook threaded through the sim driver.
///
/// Mirrors the [`CancelToken`](crate::CancelToken) pattern: the driver
/// takes an `Option<&dyn TelemetryProbe>` and consults it on the same
/// 256-access cadence as cancellation polling, so a `None` probe costs a
/// single never-taken branch and the unwatched hot path is unchanged.
/// Implementations must be cheap, lock-free, and allocation-free — they
/// run inside the access loop.
///
/// The probe's outputs are observability-only: they must never feed back
/// into simulation state, and nothing published through a probe may be
/// digested, so probed and unprobed runs stay byte-identical in every
/// recorded artifact.
pub trait TelemetryProbe: Sync {
    /// A cell (or cell attempt) is starting on this probe's worker.
    #[allow(clippy::too_many_arguments)]
    fn cell_begin(
        &self,
        _spec_index: u64,
        _workload_index: u64,
        _attempt: u64,
        _expected_accesses: u64,
        _label: &str,
        _workload: &str,
    ) {
    }

    /// Periodic progress sample from the access hot loop.
    fn publish_progress(&self, snap: &ProbeSnapshot);

    /// Sampling-interval convergence update (sampled runs only).
    fn publish_sampling(&self, _progress: &SamplingProgress) {}

    /// The current cell finished (successfully or not).
    fn cell_end(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, access: u64) -> TraceEvent {
        TraceEvent {
            kind,
            access_index: access,
            cycle: access * 10,
            line: 0x40 + access,
            core: Some(1),
            bank: Some(2),
            set: Some(3),
            way: Some(4),
        }
    }

    #[test]
    fn columns_match_metric_scalars() {
        let m = Metrics::new(2);
        assert_eq!(metrics_scalars(&m).len(), METRICS_COLUMNS.len());
        assert_eq!(
            core_metrics_scalars(&m.per_core[0]).len(),
            CORE_METRICS_COLUMNS.len()
        );
        // A couple of spot checks that names align with values.
        let mut m = Metrics::new(1);
        m.relocations = 7;
        let i = METRICS_COLUMNS
            .iter()
            .position(|&c| c == "relocations")
            .unwrap();
        assert_eq!(metrics_scalars(&m)[i], 7);
    }

    #[test]
    fn slicer_samples_telescope_to_aggregate() {
        let mut s = EpochSlicer::new(10, 1);
        let mut m = Metrics::new(1);
        m.llc_accesses = 8;
        m.per_core[0].accesses = 10;
        s.slice(10, &m);
        m.llc_accesses = 20;
        m.per_core[0].accesses = 20;
        s.slice(20, &m);
        // End-of-run rewind: per-core counter decreases.
        m.per_core[0].accesses = 17;
        m.per_core[0].cycles = 100;
        m.per_core[0].instructions = 50;
        s.finish(20, &m);
        let samples = s.into_samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[2].start_access, samples[2].end_access);
        let acc_col = column_index(CORE_METRICS_COLUMNS, "accesses");
        assert_eq!(
            samples[2].per_core[0][acc_col], -3,
            "rewind delta is negative"
        );
        // Conservation: column sums equal the final aggregate.
        for (i, &name) in METRICS_COLUMNS.iter().enumerate() {
            let sum: i64 = samples.iter().map(|s| s.global[i]).sum();
            assert_eq!(sum, metrics_scalars(&m)[i] as i64, "column {name}");
        }
        for (i, &name) in CORE_METRICS_COLUMNS.iter().enumerate() {
            let sum: i64 = samples.iter().map(|s| s.per_core[0][i]).sum();
            assert_eq!(
                sum,
                core_metrics_scalars(&m.per_core[0])[i] as i64,
                "core column {name}"
            );
        }
        assert!((samples[2].core_ipc(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slicer_finish_skips_noop_closing_sample() {
        let mut s = EpochSlicer::new(5, 1);
        let mut m = Metrics::new(1);
        m.llc_accesses = 5;
        s.slice(5, &m);
        s.finish(5, &m);
        assert_eq!(s.samples().len(), 1, "nothing changed after the boundary");
    }

    #[test]
    fn slicer_clamps_zero_epoch() {
        let s = EpochSlicer::new(0, 1);
        assert_eq!(s.epoch_len(), 1);
        assert!(s.due(1));
    }

    #[test]
    fn ring_keeps_last_k_in_order() {
        let mut r = EventRing::new(3);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(ev(EventKind::Fill, i));
        }
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.len(), 3);
        let kept: Vec<u64> = r.ordered().iter().map(|e| e.access_index).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn filter_parse_round_trips() {
        assert_eq!(EventFilter::parse("all").unwrap(), EventFilter::all());
        let f = EventFilter::parse("fill, back-invalidation").unwrap();
        assert!(f.contains(EventKind::Fill));
        assert!(f.contains(EventKind::BackInvalidation));
        assert!(!f.contains(EventKind::Eviction));
        assert_eq!(EventFilter::parse(&f.label()).unwrap(), f);
        assert_eq!(EventFilter::all().label(), "all");
    }

    #[test]
    fn filter_parse_rejects_unknown_tokens_as_config_errors() {
        let err = EventFilter::parse("fill,bogus").unwrap_err();
        assert_eq!(err.kind_tag(), "config");
        let msg = err.to_string();
        assert!(msg.contains("'bogus'"), "names the bad token: {msg}");
        for kind in EventKind::ALL {
            assert!(msg.contains(kind.label()), "lists accepted set: {msg}");
        }
        let empty = EventFilter::parse("").unwrap_err();
        assert_eq!(empty.kind_tag(), "config");
    }

    #[test]
    fn event_json_round_trips() {
        for kind in EventKind::ALL {
            let e = ev(kind, 42);
            let back = TraceEvent::from_json(&e.to_json()).unwrap();
            assert_eq!(back, e);
        }
        // None fields are omitted and read back as None.
        let mut e = ev(EventKind::DirectoryVictim, 7);
        e.core = None;
        e.way = None;
        let text = e.to_json().to_string();
        assert!(!text.contains("\"way\""));
        let back = TraceEvent::from_json(&ziv_common::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn recorder_respects_filter_and_heatmap_flag() {
        let cfg = ObserveConfig {
            events: Some(EventTraceConfig {
                capacity: 8,
                filter: EventFilter::none().with(EventKind::Eviction),
            }),
            ..ObserveConfig::disabled()
        };
        let mut rec = FlightRecorder::new(&cfg, 2, 4, 16).unwrap();
        rec.record(ev(EventKind::Fill, 0));
        rec.record(ev(EventKind::Eviction, 1));
        assert!(rec.heatmap_mut().is_none());
        assert!(rec.latency_mut().is_none());
        let (events, recorded, heatmap, latency, leakage, forensics) = rec.finish();
        assert_eq!(recorded, 1);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Eviction);
        assert!(heatmap.is_none());
        assert!(latency.is_none());
        assert!(leakage.is_none());
        assert!(forensics.is_none());
        assert!(FlightRecorder::new(&ObserveConfig::disabled(), 2, 4, 16).is_none());
    }

    #[test]
    fn observe_config_enablement() {
        assert!(!ObserveConfig::disabled().is_enabled());
        assert!(!ObserveConfig::default().is_enabled());
        let epoch_only = ObserveConfig {
            epoch: Some(100),
            ..ObserveConfig::disabled()
        };
        assert!(epoch_only.is_enabled() && !epoch_only.wants_recorder());
        let heat = ObserveConfig {
            heatmap: true,
            ..ObserveConfig::disabled()
        };
        assert!(heat.wants_recorder());
        let lat = ObserveConfig {
            latency: true,
            ..ObserveConfig::disabled()
        };
        assert!(lat.wants_recorder() && lat.is_enabled());
        let prof = ObserveConfig {
            profile: true,
            ..ObserveConfig::disabled()
        };
        assert!(prof.is_enabled() && !prof.wants_recorder());
        let leak = ObserveConfig {
            leakage: true,
            ..ObserveConfig::disabled()
        };
        assert!(leak.wants_recorder() && leak.is_enabled());
        let forensics = ObserveConfig {
            forensics: true,
            ..ObserveConfig::disabled()
        };
        assert!(forensics.wants_recorder() && forensics.is_enabled());
    }

    #[test]
    fn forensics_observatory_rides_the_recorder() {
        use crate::forensics::ChainKind;
        use crate::llc::VictimReason;
        use ziv_common::CoreId;
        let cfg = ObserveConfig {
            forensics: true,
            ..ObserveConfig::disabled()
        };
        let mut rec = FlightRecorder::new(&cfg, 2, 4, 16).unwrap();
        let f = rec.forensics_mut().expect("forensics observatory attached");
        f.open_chain(
            ChainKind::Inclusive,
            CoreId::new(0),
            7,
            70,
            ziv_common::LineAddr::new(0x40),
            VictimReason::Baseline,
        );
        f.chain_victim(CoreId::new(1));
        f.close_chain();
        let (_, _, _, _, _, forensics) = rec.finish();
        let report = forensics.expect("forensics report produced");
        assert_eq!(report.total_victims(), 1);
        assert_eq!(report.chains_recorded, 1);
    }

    #[test]
    fn leakage_observatory_rides_the_recorder() {
        use crate::leakage::LeakageObservatory;
        use ziv_common::CoreId;
        let cfg = ObserveConfig {
            leakage: true,
            ..ObserveConfig::disabled()
        };
        let mut rec = FlightRecorder::new(&cfg, 2, 4, 16).unwrap();
        // The recorder exists but carries no observatory until the
        // driver attaches one (it needs the workload's attack roles).
        assert!(rec.leakage_mut().is_none());
        rec.attach_leakage(LeakageObservatory::new(2, 4, 16, &[0], &[1], &[3]));
        rec.leakage_mut()
            .unwrap()
            .note_back_invalidation(CoreId::new(1), ziv_common::Addr::new(3 << 6).line());
        let (_, _, _, _, leakage, _) = rec.finish();
        let report = leakage.expect("leakage report produced");
        assert_eq!(report.observable_victim_evictions(), 1);
        assert_eq!(report.total_back_invalidations(), 1);
    }

    #[test]
    fn latency_observatory_rides_the_recorder() {
        use crate::latency::{AccessClass, LatencyBreakdown};
        use ziv_common::CoreId;
        let cfg = ObserveConfig {
            latency: true,
            ..ObserveConfig::disabled()
        };
        let mut rec = FlightRecorder::new(&cfg, 2, 4, 16).unwrap();
        let lat = rec.latency_mut().expect("latency observatory attached");
        lat.record(
            CoreId::new(0),
            AccessClass::L1Hit,
            &LatencyBreakdown {
                l1: 3,
                ..LatencyBreakdown::default()
            },
        );
        let (_, _, _, report, _, _) = rec.finish();
        let report = report.expect("latency report produced");
        assert_eq!(report.total_cycles(), 3);
        assert_eq!(report.class_total(AccessClass::L1Hit).count, 1);
    }
}
