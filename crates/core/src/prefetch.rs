//! A per-core PC-indexed stride prefetcher.
//!
//! Table I's machine has no prefetcher, but the paper's related work
//! (Backes & Jimenez, MEMSYS 2019 — reference [1]) studies the joint
//! influence of inclusion policies and prefetching, and CHAR's group
//! classification (Section III-D6, attribute (i)) distinguishes blocks
//! "brought to the private caches through a prefetch or a demand
//! request". This module provides the prefetch substrate that makes
//! both concrete: a classic PC-stride prefetcher training on the L1
//! miss stream and issuing degree-N prefetches into the L2/LLC.

use ziv_common::LineAddr;

/// Confidence threshold before a stride is trusted.
const CONFIDENCE_MAX: u8 = 3;
const CONFIDENCE_ISSUE: u8 = 2;

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// Configuration of the stride prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Number of PC-indexed table entries (power of two).
    pub table_entries: usize,
    /// Prefetch degree: how many strides ahead to issue.
    pub degree: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            table_entries: 256,
            degree: 2,
        }
    }
}

/// A PC-stride prefetcher for one core.
#[derive(Debug)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: usize,
    mask: usize,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two or `degree` is 0.
    pub fn new(cfg: PrefetchConfig) -> Self {
        assert!(
            cfg.table_entries.is_power_of_two(),
            "table must be a power of two"
        );
        assert!(cfg.degree > 0, "degree must be positive");
        StridePrefetcher {
            table: vec![StrideEntry::default(); cfg.table_entries],
            degree: cfg.degree,
            mask: cfg.table_entries - 1,
            issued: 0,
        }
    }

    /// Trains on a demand access (post-L1-miss) and returns the lines to
    /// prefetch, if the PC has a confident stride.
    pub fn train(&mut self, pc: u64, line: LineAddr) -> Vec<LineAddr> {
        let idx = (pc as usize >> 2) & self.mask;
        let e = &mut self.table[idx];
        let mut out = Vec::new();
        if e.valid && e.pc == pc {
            let new_stride = line.raw() as i64 - e.last_line as i64;
            if new_stride == e.stride && new_stride != 0 {
                if e.confidence < CONFIDENCE_MAX {
                    e.confidence += 1;
                }
            } else {
                e.stride = new_stride;
                e.confidence = 0;
            }
            e.last_line = line.raw();
            if e.confidence >= CONFIDENCE_ISSUE && e.stride != 0 {
                let mut next = line.raw() as i64;
                for _ in 0..self.degree {
                    next += e.stride;
                    if next >= 0 {
                        out.push(LineAddr::new(next as u64));
                    }
                }
            }
        } else {
            *e = StrideEntry {
                pc,
                last_line: line.raw(),
                stride: 0,
                confidence: 0,
                valid: true,
            };
        }
        self.issued += out.len() as u64;
        out
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn constant_stride_trains_and_issues() {
        let mut p = StridePrefetcher::new(PrefetchConfig::default());
        let pc = 0x400;
        assert!(p.train(pc, l(10)).is_empty(), "allocation");
        assert!(
            p.train(pc, l(12)).is_empty(),
            "stride learned, confidence 0"
        );
        assert!(p.train(pc, l(14)).is_empty(), "confidence 1");
        let out = p.train(pc, l(16));
        assert_eq!(
            out,
            vec![l(18), l(20)],
            "confidence 2: degree-2 prefetch issues"
        );
        assert!(p.issued() >= 2);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(PrefetchConfig::default());
        let pc = 0x404;
        for i in 0..6 {
            p.train(pc, l(10 + i * 2));
        }
        assert!(p.train(pc, l(100)).is_empty(), "broken stride stops issue");
        assert!(p.train(pc, l(102)).is_empty());
    }

    #[test]
    fn random_pcs_do_not_interfere_much() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            table_entries: 4,
            degree: 1,
        });
        // PCs 0x10 and 0x20 alias differently; train one steadily.
        for i in 0..8 {
            p.train(0x10, l(100 + i * 4));
        }
        assert_eq!(p.train(0x10, l(132)), vec![l(136)]);
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            table_entries: 64,
            degree: 1,
        });
        let pc = 0x800;
        for i in (0..8).rev() {
            p.train(pc, l(100 + i * 3));
        }
        let out = p.train(pc, l(97));
        assert_eq!(out, vec![l(94)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        StridePrefetcher::new(PrefetchConfig {
            table_entries: 3,
            degree: 1,
        });
    }
}
