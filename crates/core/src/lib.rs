//! # ziv-core
//!
//! The paper's contribution and its host cache hierarchy: a full
//! functional + timing model of a CMP with per-core private L1/L2 caches,
//! a banked shared LLC, and a sparse coherence directory — supporting
//! the complete set of LLC management designs the paper discusses:
//!
//! | Mode | Paper reference |
//! |------|-----------------|
//! | [`LlcMode::Inclusive`] | baseline inclusive LLC (Section I) |
//! | [`LlcMode::NonInclusive`] | baseline non-inclusive LLC (Section I) |
//! | [`LlcMode::Tlh`] | TLA temporal-locality hints, Jaleel et al. MICRO 2010 |
//! | [`LlcMode::Eci`] | TLA early core invalidation, Jaleel et al. MICRO 2010 |
//! | [`LlcMode::Qbs`] | TLA query-based selection, Jaleel et al. MICRO 2010 |
//! | [`LlcMode::Sharp`] | SHARP, Yan et al. ISCA 2017 |
//! | [`LlcMode::CharOnBase`] | the CHARonBase comparison point (Section V-A) |
//! | [`LlcMode::Ric`] | Relaxed Inclusion Caches, Kayaalp et al. DAC 2017 |
//! | [`LlcMode::WayPartitioned`] | way-partitioned isolation ([26]/[31]-class) |
//! | [`LlcMode::Ziv`] | **the Zero Inclusion Victim LLC** (Section III), with all five relocation-set properties |
//!
//! plus an optional per-core stride [`prefetch`]er (the reference-[1]
//! interplay study).
//!
//! The central artifact is [`CacheHierarchy`]: feed it a stream of
//! per-core accesses and it returns latencies while maintaining exact
//! inclusion/coherence state and the paper's statistics (inclusion
//! victims, misses per level, relocations and their intervals, energy).
//!
//! # Quick start
//!
//! ```
//! use ziv_core::{CacheHierarchy, HierarchyConfig, LlcMode, ZivProperty, Access};
//! use ziv_common::{config::SystemConfig, Addr, CoreId};
//!
//! let cfg = HierarchyConfig::new(SystemConfig::scaled())
//!     .with_mode(LlcMode::Ziv(ZivProperty::LikelyDead));
//! let mut h = CacheHierarchy::new(&cfg);
//! let access = Access::read(CoreId::new(0), Addr::new(0x4000), 0x400);
//! let lat = h.access(&access, 0, 0);
//! assert!(lat > 0, "cold miss goes to memory");
//! assert_eq!(h.metrics().inclusion_victims, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod cancel;
pub mod forensics;
mod hierarchy;
pub mod latency;
pub mod leakage;
pub mod llc;
pub mod metrics;
pub mod observe;
pub mod prefetch;
pub mod private;
pub mod profile;

pub use audit::{AuditCadence, Auditor, FaultInjection};
pub use cancel::CancelToken;
pub use forensics::{
    CausalChain, ChainKind, ForensicsObservatory, ForensicsReport, ProvenanceStamp,
};
pub use hierarchy::{Access, CacheHierarchy, HierarchyConfig};
pub use latency::{AccessClass, LatencyBreakdown, LatencyComponent, LatencyReport};
pub use leakage::{CoreLeakage, LeakageObservatory, LeakageReport};
pub use llc::{LlcMode, VictimReason, ZivProperty};
pub use metrics::Metrics;
pub use observe::{
    EventFilter, EventKind, EventTraceConfig, FlightRecorder, Heatmap, Observations, ObserveConfig,
    ProbeSnapshot, SamplingProgress, TelemetryProbe, TraceEvent,
};
pub use profile::{ProfileReport, ProfileSection, SelfProfiler};
