//! Cooperative cancellation for supervised simulation runs.
//!
//! A [`CancelToken`] is the one channel through which the harness's
//! watchdog reaches inside a running cell. The driver's access loop
//! polls [`CancelToken::fired`]; the watchdog thread (wall-clock
//! budgets) or the token's own *access deadline* (deterministic budgets
//! for tests) flips it. The token is deliberately dumb — two atomics
//! and an immutable deadline — so polling it costs one relaxed load and
//! the unarmed path (`Option::None` in the driver) costs nothing at
//! all.
//!
//! Semantics, relied on by the devtests proptests:
//!
//! - with an access deadline `d`, [`CancelToken::fired`] never reports
//!   cancellation for `issued < d` (unless externally cancelled) and
//!   always reports it for `issued >= d`;
//! - external [`CancelToken::cancel`] is sticky: once fired, always
//!   fired, and the first reason wins.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    reason: Mutex<Option<String>>,
    /// Cancel automatically once the cell has issued this many
    /// accesses. `u64::MAX` = no deadline.
    access_deadline: u64,
    /// Last progress report from the driver (accesses issued), for the
    /// watchdog's diagnostics.
    progress: AtomicU64,
}

/// A cloneable, thread-safe cancellation flag with an optional
/// deterministic access-count deadline.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that fires only on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::with_access_deadline(u64::MAX)
    }

    /// A token that additionally fires once the cell has issued
    /// `deadline` accesses — a deterministic budget independent of
    /// wall-clock time.
    pub fn with_access_deadline(deadline: u64) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: Mutex::new(None),
                access_deadline: deadline,
                progress: AtomicU64::new(0),
            }),
        }
    }

    /// Fires the token. The first caller's reason is kept; later calls
    /// are no-ops.
    pub fn cancel(&self, reason: impl Into<String>) {
        let mut slot = self.inner.reason.lock().unwrap();
        if slot.is_none() {
            *slot = Some(reason.into());
        }
        drop(slot);
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been externally cancelled (does not
    /// consider the access deadline).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Polls the token at access position `issued`. Returns the
    /// cancellation reason when the token has fired — externally, or
    /// because `issued` reached the access deadline.
    pub fn fired(&self, issued: u64) -> Option<String> {
        if self.is_cancelled() {
            let slot = self.inner.reason.lock().unwrap();
            return Some(slot.clone().unwrap_or_else(|| "cancelled".into()));
        }
        if issued >= self.inner.access_deadline {
            return Some(format!(
                "access deadline {} reached",
                self.inner.access_deadline
            ));
        }
        None
    }

    /// Records the cell's progress (accesses issued) for watchdog
    /// diagnostics.
    pub fn note_progress(&self, issued: u64) {
        self.inner.progress.store(issued, Ordering::Relaxed);
    }

    /// The last progress report, in accesses issued.
    pub fn progress(&self) -> u64 {
        self.inner.progress.load(Ordering::Relaxed)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_token_fires_exactly_at_deadline() {
        let t = CancelToken::with_access_deadline(100);
        for issued in 0..100 {
            assert!(t.fired(issued).is_none(), "fired early at {issued}");
        }
        for issued in [100, 101, u64::MAX] {
            let reason = t.fired(issued).expect("must fire at/after deadline");
            assert!(reason.contains("100"), "{reason}");
        }
        assert!(!t.is_cancelled(), "deadline firing is not external cancel");
    }

    #[test]
    fn external_cancel_is_sticky_and_first_reason_wins() {
        let t = CancelToken::new();
        assert!(t.fired(u64::MAX - 1).is_none());
        t.cancel("wall-clock budget 5ms exceeded");
        t.cancel("second reason");
        assert!(t.is_cancelled());
        let r = t.fired(0).unwrap();
        assert_eq!(r, "wall-clock budget 5ms exceeded");
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        c.note_progress(42);
        assert_eq!(t.progress(), 42);
        t.cancel("stop");
        assert!(c.is_cancelled());
    }
}
