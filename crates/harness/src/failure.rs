//! Minimized failure-repro records and deterministic replay.
//!
//! When a campaign cell fails (audit violation, watchdog trip), the
//! runner dumps everything needed to rebuild that exact run into
//! `<results-dir>/failures/<digest>.json`: the campaign parameters
//! (which regenerate the workload bit-for-bit), the cell coordinates,
//! the injected fault if any, and what was detected. `zivsim replay
//! <file>` then re-runs just that cell at `every-access` audit cadence,
//! which pins the violation to the exact access that introduced it —
//! the record is a *repro*, not merely a log line.

use crate::campaign::{campaigns, CampaignParams, CellDigest, CELL_SCHEMA_VERSION};
use crate::supervise::run_one_guarded;
use std::path::{Path, PathBuf};
use std::time::Duration;
use ziv_common::json::{self, JsonValue};
use ziv_common::{Fnv1a, SimError};
use ziv_core::{AuditCadence, FaultInjection};
use ziv_sim::{CellBudget, Effort, RunOptions, TraceEvent};

/// Wall-clock guard on a replay run. Replaying a `hang-core` record
/// re-injects the hang; without this budget the replay itself would
/// wedge instead of reproducing the recorded `timeout` failure.
const REPLAY_WALL_BUDGET: Duration = Duration::from_secs(30);

/// Version tag of the failure-record JSON schema.
pub const FAILURE_SCHEMA_VERSION: u64 = 1;

/// Everything needed to deterministically rebuild one failed campaign
/// cell and reproduce its failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Registered campaign name (rebuilds the spec/recipe grid).
    pub campaign: String,
    /// Campaign parameters, stored by value so replay does not depend
    /// on the environment (`ZIV_FAST` / `ZIV_FULL`).
    pub params: CampaignParams,
    /// Index of the failing cell's spec in the campaign.
    pub spec_index: usize,
    /// Index of the failing cell's recipe in the campaign.
    pub workload_index: usize,
    /// The cell's content digest at the time of failure.
    pub digest: CellDigest,
    /// Spec label (presentation only).
    pub label: String,
    /// Workload name (presentation only).
    pub workload: String,
    /// Audit cadence label under which the failure was detected.
    pub audit: String,
    /// The per-core cycle budget that was in force.
    pub budget_cycles: u64,
    /// [`SimError::kind_tag`] of the recorded error.
    pub error_kind: String,
    /// Rendered error message.
    pub error_message: String,
    /// For audit errors: `(ViolationKind string, access index)`.
    pub violation: Option<(String, u64)>,
    /// The deliberately injected fault, when the spec carried one:
    /// `(kind string, at_access)`.
    pub fault: Option<(String, u64)>,
    /// The flight recorder's trailing events leading up to the failure,
    /// oldest first. Taken from the failing run when event tracing was
    /// on, otherwise captured by one deterministic re-run of the cell
    /// with the tracer enabled. Empty in records written before the
    /// tracer existed (`from_json` tolerates the missing key).
    pub events: Vec<TraceEvent>,
}

impl FailureRecord {
    /// Serializes the record to its JSON form.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("schema".to_string(), JsonValue::u64(FAILURE_SCHEMA_VERSION)),
            ("campaign".to_string(), JsonValue::str(&self.campaign)),
            ("seed".to_string(), JsonValue::u64(self.params.seed)),
            (
                "cores".to_string(),
                JsonValue::u64(self.params.cores as u64),
            ),
            (
                "effort".to_string(),
                JsonValue::Obj(vec![
                    (
                        "accesses_per_core".to_string(),
                        JsonValue::u64(self.params.effort.accesses_per_core as u64),
                    ),
                    (
                        "hetero_mixes".to_string(),
                        JsonValue::u64(self.params.effort.hetero_mixes as u64),
                    ),
                    (
                        "mt_accesses_per_core".to_string(),
                        JsonValue::u64(self.params.effort.mt_accesses_per_core as u64),
                    ),
                    (
                        "tpce_accesses_per_core".to_string(),
                        JsonValue::u64(self.params.effort.tpce_accesses_per_core as u64),
                    ),
                    (
                        "threads".to_string(),
                        JsonValue::u64(self.params.effort.threads as u64),
                    ),
                ]),
            ),
            (
                "spec_index".to_string(),
                JsonValue::u64(self.spec_index as u64),
            ),
            (
                "workload_index".to_string(),
                JsonValue::u64(self.workload_index as u64),
            ),
            ("digest".to_string(), JsonValue::str(self.digest.hex())),
            ("label".to_string(), JsonValue::str(&self.label)),
            ("workload".to_string(), JsonValue::str(&self.workload)),
            ("audit".to_string(), JsonValue::str(&self.audit)),
            (
                "budget_cycles".to_string(),
                JsonValue::u64(self.budget_cycles),
            ),
            ("error_kind".to_string(), JsonValue::str(&self.error_kind)),
            (
                "error_message".to_string(),
                JsonValue::str(&self.error_message),
            ),
        ];
        if let Some((kind, idx)) = &self.violation {
            fields.push((
                "violation".to_string(),
                JsonValue::Obj(vec![
                    ("kind".to_string(), JsonValue::str(kind)),
                    ("access_index".to_string(), JsonValue::u64(*idx)),
                ]),
            ));
        }
        if let Some((kind, at)) = &self.fault {
            fields.push((
                "fault".to_string(),
                JsonValue::Obj(vec![
                    ("kind".to_string(), JsonValue::str(kind)),
                    ("at_access".to_string(), JsonValue::u64(*at)),
                ]),
            ));
        }
        if !self.events.is_empty() {
            fields.push((
                "events".to_string(),
                JsonValue::Arr(self.events.iter().map(TraceEvent::to_json).collect()),
            ));
        }
        JsonValue::Obj(fields)
    }

    /// Deserializes a record from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or malformed field.
    pub fn from_json(v: &JsonValue) -> Result<FailureRecord, String> {
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing or malformed '{key}'"))
        };
        let s = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or malformed '{key}'"))
        };
        let schema = u("schema")?;
        if schema != FAILURE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported failure-record schema {schema} (expected {FAILURE_SCHEMA_VERSION})"
            ));
        }
        let effort = v.get("effort").ok_or("missing 'effort'")?;
        let eu = |key: &str| {
            effort
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing or malformed 'effort.{key}'"))
        };
        let params = CampaignParams {
            seed: u("seed")?,
            cores: u("cores")? as usize,
            effort: Effort {
                accesses_per_core: eu("accesses_per_core")? as usize,
                hetero_mixes: eu("hetero_mixes")? as usize,
                mt_accesses_per_core: eu("mt_accesses_per_core")? as usize,
                tpce_accesses_per_core: eu("tpce_accesses_per_core")? as usize,
                threads: eu("threads")? as usize,
            },
        };
        let pair = |key: &str, idx_key: &str| -> Result<Option<(String, u64)>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(obj) => Ok(Some((
                    obj.get("kind")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("missing '{key}.kind'"))?
                        .to_string(),
                    obj.get(idx_key)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("missing '{key}.{idx_key}'"))?,
                ))),
            }
        };
        Ok(FailureRecord {
            campaign: s("campaign")?,
            params,
            spec_index: u("spec_index")? as usize,
            workload_index: u("workload_index")? as usize,
            digest: CellDigest::from_hex(&s("digest")?).ok_or("malformed 'digest'")?,
            label: s("label")?,
            workload: s("workload")?,
            audit: s("audit")?,
            budget_cycles: u("budget_cycles")?,
            error_kind: s("error_kind")?,
            error_message: s("error_message")?,
            violation: pair("violation", "access_index")?,
            fault: pair("fault", "at_access")?,
            events: match v.get("events") {
                None => Vec::new(),
                Some(arr) => arr
                    .as_array()
                    .ok_or("malformed 'events'")?
                    .iter()
                    .map(TraceEvent::from_json)
                    .collect::<Result<_, _>>()?,
            },
        })
    }

    /// Writes the record to `<dir>/<digest>.json`, creating `dir` as
    /// needed, and returns the written path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] naming the failing path.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, SimError> {
        std::fs::create_dir_all(dir).map_err(|e| SimError::io("create failures dir", dir, e))?;
        let path = dir.join(format!("{}.json", self.digest.hex()));
        std::fs::write(&path, format!("{}\n", self.to_json()))
            .map_err(|e| SimError::io("write failure record", &path, e))?;
        Ok(path)
    }

    /// Reads a record back from a file written by [`FailureRecord::save`].
    ///
    /// # Errors
    ///
    /// - [`SimError::Io`] when the file cannot be read.
    /// - [`SimError::Parse`] when it is not a valid failure record.
    pub fn load(path: &Path) -> Result<FailureRecord, SimError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SimError::io("read failure record", path, e))?;
        json::parse(text.trim())
            .and_then(|v| FailureRecord::from_json(&v))
            .map_err(|msg| SimError::parse(Some(path), 0, msg))
    }
}

/// What a [`replay`] run produced, compared against the record.
#[derive(Debug)]
pub struct ReplayReport {
    /// `true` when the replay reproduced the recorded failure: same
    /// error kind, same violation kind for audit errors, and — when the
    /// original run already audited at `every-access` — the same access
    /// index.
    pub reproduced: bool,
    /// The error the replay produced, if it failed at all.
    pub error: Option<SimError>,
    /// Human-readable comparison of recorded vs. replayed failure.
    pub note: String,
}

/// Deterministically re-runs the cell described by `record` at
/// `every-access` audit cadence (pinning any violation to the exact
/// access that introduced it) under the recorded cycle budget, and
/// compares the outcome with what the record claims. The replay runs
/// supervised — panic containment plus a wall-clock watchdog — so
/// hang-core and panic-core records reproduce their failures instead
/// of taking the replaying process down with them.
///
/// # Errors
///
/// Returns [`SimError::Config`] when the record does not describe a
/// rebuildable cell (unknown campaign, out-of-range indices, unknown
/// fault kind). A replay that simply *fails to reproduce* is not an
/// error: it comes back as `Ok` with `reproduced == false`.
pub fn replay(record: &FailureRecord) -> Result<ReplayReport, SimError> {
    let campaign = campaigns::by_name(&record.campaign, &record.params)
        .ok_or_else(|| SimError::Config(format!("unknown campaign '{}'", record.campaign)))?;
    if record.spec_index >= campaign.specs.len() {
        return Err(SimError::Config(format!(
            "spec index {} out of range for campaign '{}' ({} specs)",
            record.spec_index,
            record.campaign,
            campaign.specs.len()
        )));
    }
    if record.workload_index >= campaign.recipes.len() {
        return Err(SimError::Config(format!(
            "workload index {} out of range for campaign '{}' ({} recipes)",
            record.workload_index,
            record.campaign,
            campaign.recipes.len()
        )));
    }
    let mut spec = campaign.specs[record.spec_index].clone();
    if let Some((kind, at)) = &record.fault {
        let fault = FaultInjection::from_parts(kind, *at)
            .ok_or_else(|| SimError::Config(format!("unknown fault kind '{kind}'")))?;
        spec = spec.with_fault(fault);
    }

    let mut notes = Vec::new();
    let mut h = Fnv1a::new();
    h.write_u64(CELL_SCHEMA_VERSION);
    spec.digest_into(&mut h);
    campaign.recipes[record.workload_index].digest_into(&mut h);
    let rebuilt = CellDigest(h.finish());
    if rebuilt != record.digest {
        notes.push(format!(
            "warning: rebuilt cell digest {rebuilt} != recorded {} \
             (campaign definition or simulator changed since the record was written)",
            record.digest
        ));
    }

    let workload = campaign.recipes[record.workload_index].build();
    let opts = RunOptions {
        audit: AuditCadence::EveryAccess,
        budget: Some(CellBudget::Cycles(record.budget_cycles)),
        observe: ziv_sim::ObserveConfig::disabled(),
        sampling: None,
    };
    // Guarded execution: a hang-core record parks the model again (the
    // watchdog cancels it, reproducing the timeout) and a panic-core
    // record panics again (contained, reproducing the internal error).
    let (outcome, _) = run_one_guarded(&spec, &workload, &opts, Some(REPLAY_WALL_BUDGET));

    let report = match outcome {
        Ok(_) => ReplayReport {
            reproduced: false,
            error: None,
            note: join_notes(notes, "replay completed cleanly — failure NOT reproduced"),
        },
        Err(e) => {
            let mut reproduced = e.kind_tag() == record.error_kind;
            let mut detail = format!(
                "recorded [{}] {}; replay produced [{}] {e}",
                record.error_kind,
                record.error_message,
                e.kind_tag()
            );
            if let (Some(v), Some((kind, idx))) = (e.violation(), &record.violation) {
                reproduced &= v.kind.as_str() == kind;
                // Only an every-access original pins the index exactly;
                // a sampled auditor detects the same corruption later.
                if record.audit == AuditCadence::EveryAccess.label() {
                    reproduced &= v.access_index == *idx;
                }
                detail = format!(
                    "recorded {} at access {} (audit {}); replay found {} at access {}",
                    kind, idx, record.audit, v.kind, v.access_index
                );
            }
            let verdict = if reproduced {
                "failure REPRODUCED"
            } else {
                "failure NOT reproduced"
            };
            ReplayReport {
                reproduced,
                error: Some(e),
                note: join_notes(notes, &format!("{verdict}: {detail}")),
            }
        }
    };
    Ok(report)
}

fn join_notes(mut notes: Vec<String>, last: &str) -> String {
    notes.push(last.to_string());
    notes.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> FailureRecord {
        FailureRecord {
            campaign: "smoke".into(),
            params: CampaignParams::tiny(),
            spec_index: 0,
            workload_index: 1,
            digest: CellDigest(0xabcd_ef01_2345_6789),
            label: "I-LRU 256KB".into(),
            workload: "homo-hotl2".into(),
            audit: "every-access".into(),
            budget_cycles: 123_456_789,
            error_kind: "audit".into(),
            error_message: "audit violation [missing-sharer-bit] after access 7".into(),
            violation: Some(("missing-sharer-bit".into(), 7)),
            fault: Some(("corrupt-directory".into(), 7)),
            events: vec![TraceEvent {
                kind: ziv_sim::EventKind::BackInvalidation,
                access_index: 6,
                cycle: 123,
                line: 0x40,
                core: Some(1),
                bank: Some(0),
                set: Some(3),
                way: Some(2),
            }],
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = sample_record();
        let back = FailureRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);

        // Optional fields stay optional: a record without them (as
        // written before the flight recorder existed) still parses.
        let bare = FailureRecord {
            violation: None,
            fault: None,
            events: vec![],
            ..sample_record()
        };
        let json = bare.to_json();
        assert!(json.get("events").is_none(), "empty events key emitted");
        let back = FailureRecord::from_json(&json).unwrap();
        assert_eq!(back, bare);
    }

    #[test]
    fn record_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("ziv-failure-records-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let r = sample_record();
        let path = r.save(&dir).unwrap();
        assert!(path.ends_with(format!("{}.json", r.digest.hex())));
        assert_eq!(FailureRecord::load(&path).unwrap(), r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_records_are_rejected_with_context() {
        assert!(FailureRecord::from_json(&JsonValue::Obj(vec![])).is_err());
        let mut v = sample_record().to_json();
        if let JsonValue::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "schema" {
                    *val = JsonValue::u64(99);
                }
            }
        }
        let err = FailureRecord::from_json(&v).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn replay_rejects_unbuildable_records() {
        let r = FailureRecord {
            campaign: "no-such-campaign".into(),
            ..sample_record()
        };
        assert!(matches!(replay(&r), Err(SimError::Config(_))));
        let r = FailureRecord {
            spec_index: 999,
            ..sample_record()
        };
        assert!(matches!(replay(&r), Err(SimError::Config(_))));
        let r = FailureRecord {
            fault: Some(("nonsense".into(), 0)),
            ..sample_record()
        };
        assert!(matches!(replay(&r), Err(SimError::Config(_))));
    }

    #[test]
    fn replay_of_a_healthy_cell_reports_not_reproduced() {
        let r = FailureRecord {
            fault: None,
            ..sample_record()
        };
        let report = replay(&r).unwrap();
        assert!(!report.reproduced);
        assert!(report.error.is_none());
        assert!(report.note.contains("NOT reproduced"), "{}", report.note);
    }
}
