//! Campaign definitions: a figure-style sweep as *data*.
//!
//! A [`Campaign`] is a named `specs × recipes` grid plus a baseline
//! column. Everything about it is reproducible from a
//! [`CampaignParams`] — `(seed, effort, core count)` — so two processes
//! given the same parameters build byte-identical campaigns and
//! therefore identical cell digests; that is what makes the result
//! cache shareable across runs, processes, and thread counts.

use ziv_common::config::{L2Size, SystemConfig};
use ziv_common::Fnv1a;
use ziv_core::{FaultInjection, LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{Effort, RunSpec};
use ziv_workloads::{apps, AttackRecipe, Recipe, ScaleParams};

/// Version tag mixed into every cell digest. Bump when the digested
/// field set or the simulator's observable behavior changes in a way
/// that must invalidate previously cached results.
///
/// History: 1 → 2 when [`ziv_core::Metrics`] gained `llc_demand_fills`
/// (the demand-fill conservation counter); 2 → 3 when it gained
/// `access_latency_cycles` (the latency-attribution conservation
/// anchor) — in both cases old ledger lines no longer parse, so their
/// cells must re-address.
pub const CELL_SCHEMA_VERSION: u64 = 3;

/// The content address of one campaign cell: a stable FNV-1a digest of
/// `(CELL_SCHEMA_VERSION, RunSpec semantics, Recipe semantics)`.
/// Identical across processes, platforms, and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellDigest(pub u64);

impl CellDigest {
    /// The ledger's key encoding: 16 lowercase hex digits.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`hex`](CellDigest::hex) encoding.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(CellDigest)
    }
}

impl std::fmt::Display for CellDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A named experiment sweep: every `spec × recipe` combination is one
/// cell, and the grid's speedup summary is normalized against
/// `baseline_spec`.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Registry name (e.g. `"fig08-lru-perf"`).
    pub name: String,
    /// One-line description for listings.
    pub description: String,
    /// Configuration axis.
    pub specs: Vec<RunSpec>,
    /// Workload axis, as regenerable recipes.
    pub recipes: Vec<Recipe>,
    /// Index into `specs` of the normalization baseline.
    pub baseline_spec: usize,
}

impl Campaign {
    /// The content address of cell `(spec_index, recipe_index)`.
    ///
    /// Deliberately independent of the campaign's name: two campaigns
    /// sharing a `(spec, recipe)` cell share its cached result.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cell_digest(&self, spec_index: usize, recipe_index: usize) -> CellDigest {
        let mut h = Fnv1a::new();
        h.write_u64(CELL_SCHEMA_VERSION);
        self.specs[spec_index].digest_into(&mut h);
        self.recipes[recipe_index].digest_into(&mut h);
        CellDigest(h.finish())
    }

    /// Every `(spec_index, recipe_index)` cell, row-major.
    pub fn cells(&self) -> Vec<(usize, usize)> {
        (0..self.specs.len())
            .flat_map(|s| (0..self.recipes.len()).map(move |w| (s, w)))
            .collect()
    }

    /// Number of cells in the grid.
    pub fn total_cells(&self) -> usize {
        self.specs.len() * self.recipes.len()
    }
}

/// The inputs a campaign is reproducible from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignParams {
    /// Workload-generation seed (the figure benches use `0x2026`).
    pub seed: u64,
    /// Workload sizing.
    pub effort: Effort,
    /// Cores per multiprogrammed workload.
    pub cores: usize,
}

impl CampaignParams {
    /// The figure-bench defaults: seed `0x2026`, effort from the
    /// environment (`ZIV_FAST` / `ZIV_FULL`), 8 cores.
    pub fn from_env() -> Self {
        CampaignParams {
            seed: 0x2026,
            effort: Effort::from_env(),
            cores: 8,
        }
    }

    /// Tiny sizes for tests and doc examples: 2 cores, ~1.5k accesses.
    pub fn tiny() -> Self {
        CampaignParams {
            seed: 0x2026,
            effort: Effort {
                accesses_per_core: 1_500,
                hetero_mixes: 1,
                mt_accesses_per_core: 1_000,
                tpce_accesses_per_core: 500,
                threads: 2,
            },
            cores: 2,
        }
    }
}

/// The built-in campaign registry (the paper's figure sweeps).
pub mod campaigns {
    use super::*;

    /// `(name, description)` of every built-in campaign.
    pub fn names() -> Vec<(&'static str, &'static str)> {
        vec![
            ("smoke", "2-config × 2-workload sanity sweep (I-LRU vs ZIV-LikelyDead)"),
            (
                "fig02-inclusion-victims",
                "inclusive LLC inclusion-victim counts under LRU/Hawkeye/MIN across L2 sizes",
            ),
            (
                "fig08-lru-perf",
                "multiprogrammed performance, LRU baseline: I/NI/QBS/SHARP/ZIV×3 across L2 sizes",
            ),
            (
                "fig11-hawkeye-perf",
                "multiprogrammed performance, Hawkeye baseline: I/NI/QBS/SHARP/ZIV×2 across L2 sizes",
            ),
            (
                "attack-eval",
                "side-channel leakage: prime+probe and hammer attackers vs I/QBS/SHARP/ZIV defenses",
            ),
            (
                "soak",
                "chaos-soak grid: mixed LLC modes × 3 workloads, the substrate `zivsim soak` injects faults into",
            ),
        ]
    }

    /// Builds the named campaign from `params`, or `None` for an
    /// unknown name.
    pub fn by_name(name: &str, params: &CampaignParams) -> Option<Campaign> {
        match name {
            "smoke" => Some(smoke(params)),
            "fig02-inclusion-victims" => Some(fig02(params)),
            "fig08-lru-perf" => Some(fig08(params)),
            "fig11-hawkeye-perf" => Some(fig11(params)),
            "attack-eval" => Some(attack_eval(params)),
            "soak" => Some(soak(params)),
            _ => None,
        }
    }

    /// Workload footprints are sized against the 256 KB-class machine
    /// so the *same recipes* (and so the same cached cells) drive every
    /// configuration of an L2-capacity sweep, exactly as the figure
    /// benches' `mp_suite` does with its fixed traces.
    fn mp_recipes(params: &CampaignParams) -> Vec<Recipe> {
        let scale = ScaleParams::from_system(&SystemConfig::scaled_with_l2(L2Size::K256));
        Recipe::default_suite(
            params.effort.hetero_mixes,
            params.cores,
            params.effort.accesses_per_core,
            params.seed,
            scale,
        )
    }

    /// A spec labeled the way the paper's figures are (`"I-LRU 256KB"`).
    fn figure_spec(mode: LlcMode, policy: PolicyKind, l2: L2Size) -> RunSpec {
        let label = format!("{}-{} {}", mode.label(), policy.label(), l2.label());
        RunSpec::new(label, SystemConfig::scaled_with_l2(l2))
            .with_mode(mode)
            .with_policy(policy)
    }

    fn smoke(params: &CampaignParams) -> Campaign {
        let scale = ScaleParams::from_system(&SystemConfig::scaled_with_l2(L2Size::K256));
        let accesses = (params.effort.accesses_per_core / 10).max(500);
        let recipes = vec![
            Recipe::homogeneous(
                apps::app_by_name("circset").expect("known app"),
                params.cores,
                accesses,
                params.seed,
                scale,
            ),
            Recipe::homogeneous(
                apps::app_by_name("hotl2").expect("known app"),
                params.cores,
                accesses,
                params.seed,
                scale,
            ),
        ];
        let specs = vec![
            figure_spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K256),
            figure_spec(
                LlcMode::Ziv(ZivProperty::LikelyDead),
                PolicyKind::Lru,
                L2Size::K256,
            ),
        ];
        Campaign {
            name: "smoke".into(),
            description: names()[0].1.into(),
            specs,
            recipes,
            baseline_spec: 0,
        }
    }

    fn fig02(params: &CampaignParams) -> Campaign {
        let mut specs = Vec::new();
        for policy in [PolicyKind::Lru, PolicyKind::Hawkeye, PolicyKind::Min] {
            for l2 in L2Size::TABLE1 {
                specs.push(figure_spec(LlcMode::Inclusive, policy, l2));
            }
        }
        Campaign {
            name: "fig02-inclusion-victims".into(),
            description: names()[1].1.into(),
            specs,
            recipes: mp_recipes(params),
            baseline_spec: 0,
        }
    }

    fn fig08(params: &CampaignParams) -> Campaign {
        use ZivProperty::*;
        let modes = [
            LlcMode::Inclusive,
            LlcMode::NonInclusive,
            LlcMode::Qbs,
            LlcMode::Sharp,
            LlcMode::Ziv(NotInPrC),
            LlcMode::Ziv(LruNotInPrC),
            LlcMode::Ziv(LikelyDead),
        ];
        let mut specs = Vec::new();
        for l2 in L2Size::TABLE1 {
            for mode in modes {
                specs.push(figure_spec(mode, PolicyKind::Lru, l2));
            }
        }
        Campaign {
            name: "fig08-lru-perf".into(),
            description: names()[2].1.into(),
            specs,
            recipes: mp_recipes(params),
            baseline_spec: 0,
        }
    }

    /// The security-evaluation grid: each attack scenario (prime+probe
    /// eviction-set attacker, targeted back-invalidation hammer) runs
    /// against the inclusive baseline and the QBS / SHARP / ZIV
    /// defenses. The runner's leakage observatory turns every cell into
    /// one `leakage.csv` row; the zero-inclusion-victim modes must show
    /// exactly zero attacker-observable victim evictions.
    fn attack_eval(params: &CampaignParams) -> Campaign {
        use ZivProperty::*;
        let scale = ScaleParams::from_system(&SystemConfig::scaled_with_l2(L2Size::K256));
        // Probe enough sets for a clear signal without the prime/probe
        // passes dwarfing the victim's own accesses.
        let target_sets = 8;
        let recipes = vec![
            Recipe::attack(
                AttackRecipe::prime_probe(target_sets),
                params.cores,
                params.effort.accesses_per_core,
                params.seed,
                scale,
            ),
            Recipe::attack(
                AttackRecipe::hammer(target_sets),
                params.cores,
                params.effort.accesses_per_core,
                params.seed,
                scale,
            ),
        ];
        let modes = [
            LlcMode::Inclusive,
            LlcMode::Qbs,
            LlcMode::Sharp,
            LlcMode::Ziv(NotInPrC),
            LlcMode::Ziv(LikelyDead),
        ];
        let specs = modes
            .into_iter()
            .map(|mode| figure_spec(mode, PolicyKind::Lru, L2Size::K256))
            .collect();
        Campaign {
            name: "attack-eval".into(),
            description: names()[4].1.into(),
            specs,
            recipes,
            baseline_spec: 0,
        }
    }

    /// The chaos-soak substrate: a small grid that deliberately spans
    /// every class of spec the fault injectors care about — two
    /// inclusive specs (back-invalidation faults need real
    /// back-invalidations, which I-Hawkeye under `circset` produces), a
    /// non-inclusive spec, the TLA/SHARP defenses, and a ZIV spec.
    /// Spec 0 is the baseline and is never faulted by the scheduler
    /// ([`soak_chaos`]), so the summary normalization stays comparable
    /// between the fault-free and chaos passes.
    ///
    /// Workloads are sized up from the smoke campaign (≥ 4 cores,
    /// ≥ 2500 accesses/core) so that the inclusive specs actually
    /// back-invalidate at every effort level.
    fn soak(params: &CampaignParams) -> Campaign {
        let scale = ScaleParams::from_system(&SystemConfig::scaled_with_l2(L2Size::K256));
        let cores = params.cores.max(4);
        let accesses = (params.effort.accesses_per_core / 8).max(2_500);
        let recipes = ["circset", "hotl2", "chase"]
            .into_iter()
            .map(|app| {
                Recipe::homogeneous(
                    apps::app_by_name(app).expect("known app"),
                    cores,
                    accesses,
                    params.seed,
                    scale,
                )
            })
            .collect();
        let specs = vec![
            figure_spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K256),
            figure_spec(LlcMode::Inclusive, PolicyKind::Hawkeye, L2Size::K256),
            figure_spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::M1),
            figure_spec(LlcMode::NonInclusive, PolicyKind::Lru, L2Size::K256),
            figure_spec(LlcMode::Qbs, PolicyKind::Lru, L2Size::K256),
            figure_spec(LlcMode::Sharp, PolicyKind::Lru, L2Size::K256),
            figure_spec(
                LlcMode::Ziv(ZivProperty::LikelyDead),
                PolicyKind::Lru,
                L2Size::K256,
            ),
        ];
        Campaign {
            name: "soak".into(),
            description: names()[5].1.into(),
            specs,
            recipes,
            baseline_spec: 0,
        }
    }

    /// One fault the chaos scheduler armed on a soak spec.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SoakFault {
        /// Index of the faulted spec in the soak campaign.
        pub spec_index: usize,
        /// The armed injection.
        pub fault: FaultInjection,
    }

    /// Builds the chaos variant of the [`soak`] grid: the same campaign
    /// with one deliberate fault armed on each of five specs, plus the
    /// plan of what went where. Deterministic per `params.seed` — the
    /// scheduler draws every trigger access and the fault→spec
    /// assignment from a splitmix64 stream, so two processes with the
    /// same seed soak the exact same chaos grid.
    ///
    /// Scheduling constraints the shuffle respects:
    ///
    /// - spec 0 (the baseline) and the last spec stay healthy, so the
    ///   run always has fault-free rows to compare byte-for-byte
    ///   against the fault-free pass;
    /// - `skip-back-invalidation` is pinned to spec 1 (I-Hawkeye,
    ///   inclusive): it only fires on a real back-invalidation;
    /// - the other four injectors (`corrupt-directory`, `stall-core`,
    ///   `hang-core`, `panic-core`) are shuffled across specs 2–5.
    pub fn soak_chaos(params: &CampaignParams) -> (Campaign, Vec<SoakFault>) {
        let mut campaign = soak(params);
        let mut state = params.seed ^ 0xfa17_1417_c4a0_55ed;
        let mut draw = move || {
            // splitmix64: the same generator the backoff jitter uses.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        // Trigger accesses land in [50, 250): early enough to fire at
        // every effort level, late enough that the run is warmed up.
        let mut at = || 50 + draw() % 200;
        let mut faults = vec![SoakFault {
            spec_index: 1,
            fault: FaultInjection::SkipBackInvalidation { at_access: at() },
        }];
        let mut movable = [
            FaultInjection::CorruptDirectory { at_access: at() },
            FaultInjection::StallCore { at_access: at() },
            FaultInjection::HangCore { at_access: at() },
            FaultInjection::PanicCore { at_access: at() },
        ];
        // Seeded Fisher-Yates over the movable injectors.
        for i in (1..movable.len()).rev() {
            movable.swap(i, (draw() % (i as u64 + 1)) as usize);
        }
        for (offset, fault) in movable.into_iter().enumerate() {
            faults.push(SoakFault {
                spec_index: 2 + offset,
                fault,
            });
        }
        for f in &faults {
            campaign.specs[f.spec_index] = campaign.specs[f.spec_index].clone().with_fault(f.fault);
        }
        (campaign, faults)
    }

    fn fig11(params: &CampaignParams) -> Campaign {
        use ZivProperty::*;
        let modes = [
            LlcMode::Inclusive,
            LlcMode::NonInclusive,
            LlcMode::Qbs,
            LlcMode::Sharp,
            LlcMode::Ziv(MaxRrpvNotInPrC),
            LlcMode::Ziv(MaxRrpvLikelyDead),
        ];
        let mut specs = Vec::new();
        for l2 in L2Size::TABLE1 {
            for mode in modes {
                specs.push(figure_spec(mode, PolicyKind::Hawkeye, l2));
            }
        }
        Campaign {
            name: "fig11-hawkeye-perf".into(),
            description: names()[3].1.into(),
            specs,
            recipes: mp_recipes(params),
            baseline_spec: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_every_listed_campaign() {
        let params = CampaignParams::tiny();
        for (name, _) in campaigns::names() {
            let c = campaigns::by_name(name, &params).expect(name);
            assert_eq!(c.name, name);
            assert!(c.total_cells() > 0, "{name} is empty");
            assert!(c.baseline_spec < c.specs.len());
            assert_eq!(c.cells().len(), c.total_cells());
        }
        assert!(campaigns::by_name("nope", &params).is_none());
    }

    #[test]
    fn figure_campaigns_match_bench_shapes() {
        let params = CampaignParams::tiny();
        let fig02 = campaigns::by_name("fig02-inclusion-victims", &params).unwrap();
        assert_eq!(fig02.specs.len(), 9); // 3 policies × 3 L2 sizes
        assert_eq!(fig02.specs[0].label, "I-LRU 256KB");
        let fig08 = campaigns::by_name("fig08-lru-perf", &params).unwrap();
        assert_eq!(fig08.specs.len(), 21); // 7 modes × 3 L2 sizes
        assert_eq!(fig08.specs[0].label, "I-LRU 256KB");
        let fig11 = campaigns::by_name("fig11-hawkeye-perf", &params).unwrap();
        assert_eq!(fig11.specs.len(), 18); // 6 modes × 3 L2 sizes
                                           // Same recipes in fig02 and fig08: shared cells share the cache.
        assert_eq!(fig02.recipes, fig08.recipes);
        assert_eq!(fig02.cell_digest(0, 0), fig08.cell_digest(0, 0));
    }

    #[test]
    fn attack_eval_grid_shape_and_plans() {
        let params = CampaignParams::tiny();
        let c = campaigns::by_name("attack-eval", &params).unwrap();
        assert_eq!(c.specs.len(), 5); // I / QBS / SHARP / ZIV×2
        assert_eq!(c.recipes.len(), 2); // prime+probe, hammer
        assert_eq!(c.specs[0].label, "I-LRU 256KB");
        assert_eq!(c.recipes[0].workload_name(), "attack-primeprobe");
        assert_eq!(c.recipes[1].workload_name(), "attack-hammer");
        // Every attack workload carries its role plan for the
        // leakage observatory.
        for r in &c.recipes {
            let wl = r.build();
            let plan = wl.attack.as_ref().expect("attack plan");
            assert!(!plan.attacker_cores.is_empty());
            assert!(!plan.victim_cores.is_empty());
            assert!(!plan.probe_lines.is_empty());
        }
        // Distinct scenarios address distinct cells.
        assert_ne!(c.cell_digest(0, 0), c.cell_digest(0, 1));
    }

    #[test]
    fn campaigns_are_reproducible_from_params() {
        let params = CampaignParams::tiny();
        let a = campaigns::by_name("smoke", &params).unwrap();
        let b = campaigns::by_name("smoke", &params).unwrap();
        for (s, w) in a.cells() {
            assert_eq!(a.cell_digest(s, w), b.cell_digest(s, w));
        }
        // A different seed addresses different cells.
        let other = CampaignParams { seed: 99, ..params };
        let c = campaigns::by_name("smoke", &other).unwrap();
        assert_ne!(a.cell_digest(0, 0), c.cell_digest(0, 0));
    }

    #[test]
    fn digest_hex_round_trips() {
        let d = CellDigest(0x0123_4567_89ab_cdef);
        assert_eq!(d.hex(), "0123456789abcdef");
        assert_eq!(CellDigest::from_hex(&d.hex()), Some(d));
        assert_eq!(CellDigest::from_hex("xyz"), None);
        assert_eq!(CellDigest::from_hex("123"), None);
        assert_eq!(format!("{d}"), d.hex());
    }

    /// Golden digest pinning cross-process stability: this exact value
    /// was computed by a separate process. If it changes, previously
    /// written ledgers are silently invalidated — bump
    /// [`CELL_SCHEMA_VERSION`] intentionally instead.
    #[test]
    fn cell_digest_is_stable_across_processes() {
        let c = campaigns::by_name("smoke", &CampaignParams::tiny()).unwrap();
        let got = c.cell_digest(0, 0);
        let golden = CellDigest(0xceff_1624_820f_07ca);
        assert_eq!(got, golden, "digest changed: got {got}, pinned {golden}");
    }
}
