//! The campaign runner: cache partition → parallel execution →
//! ledger append → CSV export, with per-cell fault isolation.

use crate::bus::{BusOptions, CampaignBus};
use crate::campaign::{Campaign, CampaignParams, CellDigest};
use crate::failure::FailureRecord;
use crate::ledger::{Ledger, LedgerWriter};
use crate::supervise::{run_cells_supervised_probed, SuperviseConfig, SuperviseObserver};
use crate::telemetry::{CellTiming, ProgressSink, Telemetry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use ziv_common::json::JsonValue;
use ziv_common::{RetryPolicy, SimError};
use ziv_core::AuditCadence;
use ziv_sim::{
    run_one_sampled_instrumented, run_one_traced, speedup_summary, write_blame_csv, write_grid_csv,
    write_heatmap_csv, write_latency_csv, write_leakage_csv, write_perfetto_json,
    write_sampling_csv, write_summary_csv, write_timeseries_csv, write_validation_csv, CellBudget,
    EventFilter, EventTraceConfig, GridResult, Observations, ObserveConfig, ObservedCell,
    ProfileReport, RunOptions, RunResult, RunSpec, SampledCell, SampledRun, SamplingPlan,
    TelemetryProbe, TraceEvent, ValidationRow,
};
use ziv_workloads::Workload;

/// How to run a campaign.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Directory receiving `ledger.jsonl`, `grid.csv`, `summary.csv`,
    /// and `failures/` repro records.
    pub results_dir: PathBuf,
    /// Worker threads for the missing cells.
    pub threads: usize,
    /// Reuse an existing ledger (`--resume`). When `false` any
    /// existing ledger is discarded and every cell recomputes.
    pub resume: bool,
    /// How often the invariant auditor walks the hierarchy during each
    /// cell (`--audit`). `Off` costs nothing measurable.
    pub audit: AuditCadence,
    /// Fail fast (`--strict`): stop claiming new cells after the first
    /// failure. Cells already in flight still settle.
    pub strict: bool,
    /// Explicit per-core cycle budget (`--cell-budget`); `None` uses a
    /// generous budget derived from each workload's size.
    pub cell_budget: Option<u64>,
    /// Campaign parameters for failure-repro records. When set, each
    /// failing cell dumps a replayable record to
    /// `<results-dir>/failures/<digest>.json`; when `None` (a
    /// hand-built campaign not reproducible from params), only the
    /// ledger error entry is written.
    pub params: Option<CampaignParams>,
    /// What the flight recorder captures while cells execute
    /// (`--epoch` / `--events` / `--heatmap`). Disabled by default;
    /// never digested, so it cannot perturb the ledger or the cached
    /// cell results.
    pub observe: ObserveConfig,
    /// Wall-clock budget per cell attempt (`--cell-timeout`). When set,
    /// a watchdog thread cancels any cell that exceeds it; the cell is
    /// ledgered as a `timeout` failure. `None` disables the wall clock.
    /// When neither this nor `stall_window` is set, cells run without a
    /// cancellation token — the zero-cost path.
    pub cell_timeout: Option<Duration>,
    /// No-forward-progress budget per cell attempt (`--stall-window`):
    /// a cell whose access counter stops advancing for this long is
    /// cancelled and ledgered as a `timeout` failure. Catches wedged
    /// cells in milliseconds where the wall clock must stay generous
    /// for legitimately slow cells.
    pub stall_window: Option<Duration>,
    /// Extra attempts for transiently failing cells (`--retries`).
    /// Only errors with [`SimError::is_transient`] are retried, under a
    /// deterministic backoff schedule seeded from the campaign seed.
    pub retries: u32,
    /// Publish the live telemetry segment (`--telemetry on`):
    /// `<results-dir>/telemetry.shm`, the seqlock shared-memory bus
    /// that `zivsim watch` tails. Pure observability — never digested,
    /// and zero-cost when off (no thread, no mmap, no extra work on
    /// the simulation hot path).
    pub telemetry: bool,
    /// Emit one structured JSONL heartbeat line per ticker tick to
    /// stderr (`--progress jsonl`) for CI log scraping. Independent of
    /// `telemetry`; same zero-cost-when-off guarantee.
    pub progress_jsonl: bool,
    /// Export `<results-dir>/trace.json`, the Chrome trace-event /
    /// Perfetto rendering of the executed cells' observability payload
    /// (`--perfetto`). Ring events honor the `--events` filter; causal
    /// chains appear as flow events when `observe.forensics` is on.
    pub perfetto: bool,
}

impl RunnerConfig {
    /// A config with conservative defaults: single-threaded, no resume,
    /// auditing off, watchdog on its derived budget, not strict, no
    /// repro records.
    pub fn new(results_dir: impl Into<PathBuf>) -> Self {
        RunnerConfig {
            results_dir: results_dir.into(),
            threads: 1,
            resume: false,
            audit: AuditCadence::Off,
            strict: false,
            cell_budget: None,
            params: None,
            observe: ObserveConfig::disabled(),
            cell_timeout: None,
            stall_window: None,
            retries: 0,
            telemetry: false,
            progress_jsonl: false,
            perfetto: false,
        }
    }
}

/// One failed cell of a campaign run.
#[derive(Debug)]
pub struct CellFailure {
    /// Index of the cell's spec in the campaign.
    pub spec_index: usize,
    /// Index of the cell's recipe in the campaign.
    pub workload_index: usize,
    /// The cell's content digest.
    pub digest: CellDigest,
    /// Spec label.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// The typed error that felled the cell.
    pub error: SimError,
    /// Attempts made before giving up (1 = no retries were taken).
    pub attempts: u32,
    /// Path of the replayable repro record, when one was written.
    pub record_path: Option<PathBuf>,
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The full grid, cached + fresh, sorted by `(spec, workload)`.
    /// Failed cells are absent.
    pub grid: Vec<GridResult>,
    /// Cells that failed this run (empty on a clean campaign).
    pub failures: Vec<CellFailure>,
    /// Execution summary.
    pub telemetry: Telemetry,
    /// Path of the per-cell CSV.
    pub grid_csv: PathBuf,
    /// Path of the per-config speedup summary CSV.
    pub summary_csv: PathBuf,
    /// Path of the result ledger.
    pub ledger_path: PathBuf,
    /// What loading the ledger found and repaired (all-zero for a
    /// clean or absent ledger). A resume after a mid-append kill shows
    /// up here as `torn_tail`.
    pub recovery: crate::ledger::LedgerRecovery,
    /// Path of the per-epoch time-series CSV, written when epoch
    /// slicing was on. Covers only the cells executed *this* run —
    /// cached cells are not re-simulated, so they contribute no epochs.
    pub timeseries_csv: Option<PathBuf>,
    /// Path of the occupancy-heatmap CSV, written when heatmaps were
    /// on. Same executed-cells-only caveat as the time series.
    pub heatmap_csv: Option<PathBuf>,
    /// Path of the latency-attribution CSV, written when the latency
    /// observatory was on (`--latency`). Same caveat.
    pub latency_csv: Option<PathBuf>,
    /// Path of the leakage summary CSV, written when the leakage
    /// observatory was on (`--leakage` / the `attack-eval` campaign).
    /// Same executed-cells-only caveat; cells whose workloads carry no
    /// attack plan contribute no rows.
    pub leakage_csv: Option<PathBuf>,
    /// Path of the self-profiler report, written when profiling was on
    /// (`--profile`). Wall-clock data: nondeterministic by nature, like
    /// the BENCH files, and never part of the ledgered results.
    pub profile_json: Option<PathBuf>,
    /// Path of the blame-matrix CSV, written when the forensics
    /// observatory was on (`--forensics` / `--perfetto`). Same
    /// executed-cells-only caveat as the time series.
    pub blame_csv: Option<PathBuf>,
    /// Path of the Perfetto / Chrome trace-event export, written when
    /// `--perfetto` was requested. Observability only — never digested.
    pub trace_json: Option<PathBuf>,
}

/// Forwards supervised-pool completions into the ledger and the
/// progress sink. Ledger I/O errors are latched (observers cannot
/// propagate) and re-raised after the grid finishes.
struct CampaignObserver<'a> {
    campaign: &'a Campaign,
    cfg: &'a RunnerConfig,
    digests: &'a [Vec<CellDigest>],
    writer: &'a LedgerWriter,
    sink: &'a dyn ProgressSink,
    bus: Option<&'a CampaignBus>,
    done: AtomicUsize,
    failed: AtomicUsize,
    total: usize,
    timings: Mutex<Vec<CellTiming>>,
    io_error: Mutex<Option<SimError>>,
}

impl CampaignObserver<'_> {
    fn latch(&self, e: SimError) {
        self.io_error.lock().unwrap().get_or_insert(e);
    }
}

impl SuperviseObserver for CampaignObserver<'_> {
    fn cell_started(&self, _spec_index: usize, _workload_index: usize) {
        if let Some(bus) = self.bus {
            bus.cell_started();
        }
    }

    fn cell_finished(
        &self,
        spec_index: usize,
        workload_index: usize,
        result: &RunResult,
        attempts: u32,
        wall: Duration,
    ) {
        if let Err(e) =
            self.writer
                .append_attempted(self.digests[spec_index][workload_index], result, attempts)
        {
            self.latch(SimError::io(
                "append ledger entry",
                self.cfg.results_dir.join("ledger.jsonl"),
                e,
            ));
        }
        let timing = CellTiming {
            spec_index,
            workload_index,
            label: result.label.clone(),
            workload: result.workload.clone(),
            wall,
        };
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.sink.cell_finished(&timing, done, self.total);
        self.timings.lock().unwrap().push(timing);
        if let Some(bus) = self.bus {
            bus.cell_finished(attempts);
        }
    }

    fn cell_failed(
        &self,
        spec_index: usize,
        workload_index: usize,
        error: &SimError,
        attempts: u32,
        _wall: Duration,
    ) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        let digest = self.digests[spec_index][workload_index];
        let label = &self.campaign.specs[spec_index].label;
        let workload = self.campaign.recipes[workload_index].workload_name();
        if let Err(e) = self
            .writer
            .append_error(digest, label, &workload, error, attempts)
        {
            self.latch(SimError::io(
                "append ledger error entry",
                self.cfg.results_dir.join("ledger.jsonl"),
                e,
            ));
        }
        // Repro records are written after the grid settles (the runner
        // attaches flight-recorder events, which may need a re-run);
        // the streaming ledger error entry above survives a crash.
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.sink
            .cell_failed(label, &workload, error, done, self.total);
        if let Some(bus) = self.bus {
            bus.cell_failed(attempts);
        }
    }

    fn should_abort(&self) -> bool {
        self.cfg.strict && self.failed.load(Ordering::Relaxed) > 0
    }
}

/// Runs `campaign` end-to-end: loads (or resets) the ledger under
/// `cfg.results_dir`, simulates only the cells the ledger does not
/// already hold, appends each as it completes, and writes `grid.csv`
/// plus `summary.csv` over the assembled grid. When `cfg.observe`
/// enables the flight recorder, `timeseries.csv` / `heatmap.csv` are
/// written beside them covering the cells executed this run.
///
/// The exported CSVs are byte-identical whether the campaign ran in a
/// single pass or was interrupted and resumed any number of times, at
/// any thread count: cell results are deterministic, cached cells
/// round-trip their `u64` counters exactly, and the grid is assembled
/// in `(spec, workload)` order with the campaign's current labels.
///
/// **Fault isolation**: a cell that fails its invariant audit or trips
/// the watchdog does not take the campaign down. It is recorded as an
/// error entry in the ledger (so `--resume` retries exactly that cell),
/// dumped as a replayable repro record when `cfg.params` is set, and
/// reported in [`CampaignOutcome::failures`]; the remaining cells still
/// run — unless `cfg.strict`, which stops claiming new cells after the
/// first failure.
///
/// # Errors
///
/// Returns [`SimError::Io`] for results-directory, ledger, or CSV I/O
/// failures. Cell failures are **not** errors here; they come back in
/// the outcome.
pub fn run_campaign(
    campaign: &Campaign,
    cfg: &RunnerConfig,
    sink: &dyn ProgressSink,
) -> Result<CampaignOutcome, SimError> {
    std::fs::create_dir_all(&cfg.results_dir)
        .map_err(|e| SimError::io("create results dir", &cfg.results_dir, e))?;
    let ledger_path = cfg.results_dir.join("ledger.jsonl");
    if !cfg.resume && ledger_path.exists() {
        std::fs::remove_file(&ledger_path)
            .map_err(|e| SimError::io("reset ledger", &ledger_path, e))?;
    }
    let (ledger, recovery) = Ledger::recover(&ledger_path)?;
    if recovery.was_damaged() {
        sink.warning(&format!(
            "recovered damaged ledger {}{}: dropped {} unparseable line(s) ({} bytes); \
             cells without an intact entry will re-run",
            ledger_path.display(),
            if recovery.torn_tail {
                " (torn tail: interrupted mid-append)"
            } else {
                ""
            },
            recovery.dropped_lines,
            recovery.dropped_bytes,
        ));
    }

    // Partition the grid against the ledger. Cached results take the
    // campaign's *current* label and workload name (the digest ignores
    // labels, so a relabel must not leak stale names into the CSVs).
    // Cells whose latest ledger line is an error entry are retried.
    let digests: Vec<Vec<CellDigest>> = (0..campaign.specs.len())
        .map(|s| {
            (0..campaign.recipes.len())
                .map(|w| campaign.cell_digest(s, w))
                .collect()
        })
        .collect();
    let mut grid: Vec<GridResult> = Vec::with_capacity(campaign.total_cells());
    let mut missing: Vec<(usize, usize)> = Vec::new();
    for (s, w) in campaign.cells() {
        match ledger.get(digests[s][w]) {
            Some(cached) => {
                let mut result = cached.clone();
                result.label = campaign.specs[s].label.clone();
                result.workload = campaign.recipes[w].workload_name();
                grid.push(GridResult {
                    spec_index: s,
                    workload_index: w,
                    result,
                });
            }
            None => missing.push((s, w)),
        }
    }
    let cached_cells = grid.len();
    sink.campaign_started(&campaign.name, campaign.total_cells(), cached_cells);

    // Simulate the missing cells, appending each to the ledger as it
    // completes. Workloads are only regenerated when something runs.
    let workers = cfg.threads.max(1).min(missing.len().max(1));
    // The live bus starts even when every cell is cached, so a watcher
    // attached to an instant resume still sees a finished segment
    // instead of nothing.
    let bus = CampaignBus::start(
        &cfg.results_dir,
        workers,
        campaign.total_cells(),
        cached_cells,
        &BusOptions {
            telemetry: cfg.telemetry,
            progress_jsonl: cfg.progress_jsonl,
            ..BusOptions::default()
        },
    )?;
    let started = Instant::now();
    let mut timings = Vec::new();
    let mut failures: Vec<CellFailure> = Vec::new();
    let mut observed: Vec<(usize, usize, Box<Observations>)> = Vec::new();
    let mut executed_cells = 0;
    if !missing.is_empty() {
        let workloads: Vec<Workload> = campaign.recipes.iter().map(|r| r.build()).collect();
        let budget = match cfg.cell_budget {
            Some(cycles) => CellBudget::Cycles(cycles),
            None => CellBudget::Derived,
        };
        let budgets: Vec<u64> = workloads.iter().map(|w| budget.cycles_for(w)).collect();
        let opts = RunOptions {
            audit: cfg.audit,
            budget: Some(budget),
            observe: cfg.observe,
            // The ledgered pass is always full-fidelity; sampled
            // estimates live in `run_campaign_sampled` and never enter
            // the result cache.
            sampling: None,
        };
        let writer = LedgerWriter::append_to(&ledger_path)
            .map_err(|e| SimError::io("open ledger for append", &ledger_path, e))?;
        let observer = CampaignObserver {
            campaign,
            cfg,
            digests: &digests,
            writer: &writer,
            sink,
            bus: bus.as_ref(),
            done: AtomicUsize::new(cached_cells),
            failed: AtomicUsize::new(0),
            total: campaign.total_cells(),
            timings: Mutex::new(Vec::with_capacity(missing.len())),
            io_error: Mutex::new(None),
        };
        let sup = SuperviseConfig {
            cell_timeout: cfg.cell_timeout,
            stall_window: cfg.stall_window,
            retry: RetryPolicy::with_retries(cfg.retries, cfg.params.map_or(0x2026, |p| p.seed)),
            poll: Duration::from_millis(5),
        };
        let probes = bus.as_ref().and_then(|b| b.worker_probes());
        let runs = run_cells_supervised_probed(
            &campaign.specs,
            &workloads,
            &missing,
            cfg.threads,
            &opts,
            &sup,
            &observer,
            probes.as_deref(),
        );
        if let Some(e) = observer.io_error.into_inner().unwrap() {
            return Err(e);
        }
        timings = observer.timings.into_inner().unwrap();
        for run in runs {
            let mut observations = run.observations;
            match run.outcome {
                Ok(result) => {
                    executed_cells += 1;
                    grid.push(GridResult {
                        spec_index: run.spec_index,
                        workload_index: run.workload_index,
                        result,
                    });
                }
                Err(error) => {
                    let record_path = match cfg.params {
                        Some(params) => {
                            let spec = &campaign.specs[run.spec_index];
                            let events = failure_events(
                                observations.as_deref(),
                                spec,
                                &workloads[run.workload_index],
                                &opts,
                                &error,
                            );
                            let record = FailureRecord {
                                campaign: campaign.name.clone(),
                                params,
                                spec_index: run.spec_index,
                                workload_index: run.workload_index,
                                digest: digests[run.spec_index][run.workload_index],
                                label: spec.label.clone(),
                                workload: campaign.recipes[run.workload_index].workload_name(),
                                audit: cfg.audit.label(),
                                budget_cycles: budgets[run.workload_index],
                                error_kind: error.kind_tag().to_string(),
                                error_message: error.to_string(),
                                violation: error
                                    .violation()
                                    .map(|v| (v.kind.as_str().to_string(), v.access_index)),
                                fault: spec
                                    .fault
                                    .map(|f| (f.kind_str().to_string(), f.at_access())),
                                events,
                            };
                            Some(record.save(&cfg.results_dir.join("failures"))?)
                        }
                        None => None,
                    };
                    failures.push(CellFailure {
                        spec_index: run.spec_index,
                        workload_index: run.workload_index,
                        digest: digests[run.spec_index][run.workload_index],
                        label: campaign.specs[run.spec_index].label.clone(),
                        workload: campaign.recipes[run.workload_index].workload_name(),
                        error,
                        attempts: run.attempts,
                        record_path,
                    });
                }
            }
            if let Some(obs) = observations.take() {
                if !obs.is_empty() {
                    observed.push((run.spec_index, run.workload_index, obs));
                }
            }
        }
    }
    let wall = started.elapsed();
    grid.sort_by_key(|g| (g.spec_index, g.workload_index));
    timings.sort_by_key(|t| (t.spec_index, t.workload_index));
    failures.sort_by_key(|f| (f.spec_index, f.workload_index));

    let telemetry = Telemetry {
        campaign: campaign.name.clone(),
        total_cells: campaign.total_cells(),
        cached_cells,
        executed_cells,
        failed_cells: failures.len(),
        workers: if missing.is_empty() { 0 } else { workers },
        wall,
        busy: timings.iter().map(|t| t.wall).sum(),
        cells: timings,
    };

    let grid_csv = cfg.results_dir.join("grid.csv");
    write_grid_csv(&grid_csv, &grid)?;
    let summary_csv = cfg.results_dir.join("summary.csv");
    let rows = speedup_summary(&grid, campaign.specs.len(), campaign.baseline_spec);
    write_summary_csv(&summary_csv, &rows, "weighted_speedup")?;

    // Flight-recorder exports live next to the grid CSVs. They are
    // written whenever the corresponding capture was enabled — even
    // header-only when every cell came from the ledger — so downstream
    // tooling can rely on the file existing.
    let mut timeseries_csv = None;
    let mut heatmap_csv = None;
    let mut latency_csv = None;
    let mut leakage_csv = None;
    let mut profile_json = None;
    let mut blame_csv = None;
    let mut trace_json = None;
    if cfg.observe.is_enabled() {
        observed.sort_by_key(|(s, w, _)| (*s, *w));
        let names: Vec<(String, String)> = observed
            .iter()
            .map(|(s, w, _)| {
                (
                    campaign.specs[*s].label.clone(),
                    campaign.recipes[*w].workload_name(),
                )
            })
            .collect();
        let cells: Vec<ObservedCell<'_>> = observed
            .iter()
            .zip(&names)
            .map(|((_, _, obs), (label, workload))| ObservedCell {
                config: label,
                workload,
                observations: obs,
            })
            .collect();
        if cfg.observe.epoch.is_some() {
            let path = cfg.results_dir.join("timeseries.csv");
            write_timeseries_csv(&path, &cells)?;
            timeseries_csv = Some(path);
        }
        if cfg.observe.heatmap {
            let path = cfg.results_dir.join("heatmap.csv");
            write_heatmap_csv(&path, &cells)?;
            heatmap_csv = Some(path);
        }
        if cfg.observe.latency {
            let path = cfg.results_dir.join("latency.csv");
            write_latency_csv(&path, &cells)?;
            latency_csv = Some(path);
        }
        if cfg.observe.leakage {
            let path = cfg.results_dir.join("leakage.csv");
            write_leakage_csv(&path, &cells)?;
            leakage_csv = Some(path);
        }
        if cfg.observe.profile {
            let path = cfg.results_dir.join("profile.json");
            write_profile_json(&path, &cells)?;
            profile_json = Some(path);
        }
        if cfg.observe.forensics {
            let path = cfg.results_dir.join("blame.csv");
            write_blame_csv(&path, &cells)?;
            blame_csv = Some(path);
        }
        if cfg.perfetto {
            let filter = cfg
                .observe
                .events
                .map(|e| e.filter)
                .unwrap_or_else(EventFilter::all);
            let path = cfg.results_dir.join("trace.json");
            write_perfetto_json(&path, &cells, filter)?;
            trace_json = Some(path);
        }
    }

    if telemetry.is_overcommitted() {
        sink.warning(&format!(
            "per-cell timers sum to {:.2}s busy but the pool had only {:.2}s × {} workers \
             of wall capacity; utilization clamped to 100% (timer skew?)",
            telemetry.busy.as_secs_f64(),
            telemetry.wall.as_secs_f64(),
            telemetry.workers,
        ));
    }
    // Final state goes out only after every artifact is on disk, so a
    // watcher exiting on the finished flag can trust the CSVs.
    if let Some(bus) = bus {
        bus.finish();
    }
    sink.campaign_finished(&telemetry);
    Ok(CampaignOutcome {
        grid,
        failures,
        telemetry,
        grid_csv,
        summary_csv,
        ledger_path,
        recovery,
        timeseries_csv,
        heatmap_csv,
        latency_csv,
        leakage_csv,
        profile_json,
        blame_csv,
        trace_json,
    })
}

/// One cell of a sampled campaign pass.
#[derive(Debug)]
pub struct SampledCellResult {
    /// Index of the cell's spec in the campaign.
    pub spec_index: usize,
    /// Index of the cell's recipe in the campaign.
    pub workload_index: usize,
    /// Spec label.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// The sampled run: per-interval estimates, aggregate CI, coverage.
    pub sampled: SampledRun,
    /// Wall clock of the sampled run.
    pub wall: Duration,
}

/// The sampled-vs-full comparison of a validated sampled campaign.
#[derive(Debug)]
pub struct SampledValidation {
    /// The full (ledgered) campaign the sampled pass was checked
    /// against.
    pub full: CampaignOutcome,
    /// One comparison row per cell present in both passes.
    pub rows: Vec<ValidationRow>,
    /// Path of the exported `validation.csv`.
    pub validation_csv: PathBuf,
    /// Cells whose full-run IPC fell inside the sampled estimate's
    /// confidence interval.
    pub cells_within_ci: usize,
    /// Aggregate wall-clock speedup: Σ full ms / Σ sampled ms over the
    /// cells timed in both passes (0 when none were).
    pub speedup: f64,
}

/// What a sampled campaign pass produced.
#[derive(Debug)]
pub struct SampledCampaignOutcome {
    /// Successfully sampled cells, sorted by `(spec, workload)`.
    pub cells: Vec<SampledCellResult>,
    /// Cells whose sampled run failed.
    pub failures: Vec<CellFailure>,
    /// Path of the exported per-interval `sampling.csv`.
    pub sampling_csv: PathBuf,
    /// The sampled-vs-full comparison, when validation was requested.
    pub validation: Option<SampledValidation>,
}

/// Aggregate IPC of a full run: total instructions over the final
/// cycle window (the latest per-core clock) — the same window the
/// sampled per-interval estimator differences, so the two are
/// comparable.
fn aggregate_ipc(r: &RunResult) -> f64 {
    let window = r.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
    if window == 0 {
        0.0
    } else {
        r.total_instructions() as f64 / window as f64
    }
}

/// Runs `campaign` through the statistical sampling engine: every cell
/// executes under `plan`'s interval-sampling schedule (timed windows +
/// functional-warmup fast-forward) and the per-interval estimates land
/// in `<results-dir>/sampling.csv`.
///
/// Sampled estimates are **never** written to the result ledger — the
/// content-addressed cache stores only full-fidelity results — so a
/// sampled pass cannot poison later full campaigns. The sampled cells
/// run sequentially and unsupervised (each simulates only a fraction
/// of its trace; the wall-clock win comes from the fast-forward, not
/// the pool).
///
/// With `validate` set, the full campaign runs first via
/// [`run_campaign`] — ledgered, supervised, and exporting its standard
/// artifacts exactly as an unsampled invocation would — and the
/// outcome gains a [`SampledValidation`] comparing sampled IPC
/// estimates (and their confidence intervals) against the full-run
/// values, exported as `<results-dir>/validation.csv`. Full-run wall
/// clocks come from the campaign's own per-cell timers, so cells
/// served from a pre-existing ledger carry no timing and are excluded
/// from the speedup aggregate.
///
/// # Errors
///
/// Returns [`SimError::Io`] for results-directory or CSV I/O failures,
/// and propagates [`run_campaign`] errors in validation mode. Sampled
/// cell failures are reported in the outcome, not raised.
pub fn run_campaign_sampled(
    campaign: &Campaign,
    cfg: &RunnerConfig,
    plan: SamplingPlan,
    validate: bool,
    sink: &dyn ProgressSink,
) -> Result<SampledCampaignOutcome, SimError> {
    std::fs::create_dir_all(&cfg.results_dir)
        .map_err(|e| SimError::io("create results dir", &cfg.results_dir, e))?;
    let full = if validate {
        Some(run_campaign(campaign, cfg, sink)?)
    } else {
        None
    };

    let workloads: Vec<Workload> = campaign.recipes.iter().map(|r| r.build()).collect();
    let budget = match cfg.cell_budget {
        Some(cycles) => CellBudget::Cycles(cycles),
        None => CellBudget::Derived,
    };
    let opts = RunOptions {
        audit: cfg.audit,
        budget: Some(budget),
        observe: ObserveConfig::disabled(),
        sampling: Some(plan),
    };
    // Sampled cells run sequentially, so the bus gets one worker slot
    // and the campaign's solo probe. In validation mode the full pass
    // above already published (and finished) its own session on the
    // same segment path; this re-creates it for the sampled pass.
    let bus = CampaignBus::start(
        &cfg.results_dir,
        1,
        campaign.total_cells(),
        0,
        &BusOptions {
            telemetry: cfg.telemetry,
            progress_jsonl: cfg.progress_jsonl,
            ..BusOptions::default()
        },
    )?;
    let solo = bus.as_ref().and_then(|b| b.solo_probe());
    let probe: Option<&dyn TelemetryProbe> = solo.as_ref().map(|p| p as &dyn TelemetryProbe);
    let mut cells = Vec::with_capacity(campaign.total_cells());
    let mut failures = Vec::new();
    for (s, w) in campaign.cells() {
        let started = Instant::now();
        if let Some(b) = &bus {
            b.cell_started();
        }
        if let Some(p) = probe {
            p.cell_begin(
                s as u64,
                w as u64,
                1,
                workloads[w].total_accesses(),
                &campaign.specs[s].label,
                &campaign.recipes[w].workload_name(),
            );
        }
        let outcome = run_one_sampled_instrumented(
            &campaign.specs[s],
            &workloads[w],
            &opts,
            None,
            probe,
            |_| false,
        );
        if let Some(p) = probe {
            p.cell_end();
        }
        match outcome {
            Ok(sampled) => {
                if let Some(b) = &bus {
                    b.cell_finished(1);
                }
                cells.push(SampledCellResult {
                    spec_index: s,
                    workload_index: w,
                    label: campaign.specs[s].label.clone(),
                    workload: campaign.recipes[w].workload_name(),
                    sampled,
                    wall: started.elapsed(),
                });
            }
            Err(error) => {
                if let Some(b) = &bus {
                    b.cell_failed(1);
                }
                failures.push(CellFailure {
                    spec_index: s,
                    workload_index: w,
                    digest: campaign.cell_digest(s, w),
                    label: campaign.specs[s].label.clone(),
                    workload: campaign.recipes[w].workload_name(),
                    error,
                    attempts: 1,
                    record_path: None,
                });
            }
        }
    }

    let sampling_csv = cfg.results_dir.join("sampling.csv");
    let export: Vec<SampledCell<'_>> = cells
        .iter()
        .map(|c| SampledCell {
            config: &c.label,
            workload: &c.workload,
            sampled: &c.sampled,
        })
        .collect();
    write_sampling_csv(&sampling_csv, &export)?;

    let validation = match full {
        None => None,
        Some(full) => {
            let mut timing = std::collections::BTreeMap::new();
            for t in &full.telemetry.cells {
                timing.insert((t.spec_index, t.workload_index), t.wall);
            }
            let mut rows = Vec::new();
            for cell in &cells {
                let Some(grid) = full.grid.iter().find(|g| {
                    (g.spec_index, g.workload_index) == (cell.spec_index, cell.workload_index)
                }) else {
                    continue; // the full run failed this cell
                };
                rows.push(ValidationRow {
                    config: cell.label.clone(),
                    workload: cell.workload.clone(),
                    full_ipc: aggregate_ipc(&grid.result),
                    sampled_ipc: cell.sampled.ipc_estimate().unwrap_or(0.0),
                    ipc_ci: cell.sampled.ipc_ci(),
                    full_ms: timing
                        .get(&(cell.spec_index, cell.workload_index))
                        .map_or(0.0, |d| d.as_secs_f64() * 1e3),
                    sampled_ms: cell.wall.as_secs_f64() * 1e3,
                });
            }
            let validation_csv = cfg.results_dir.join("validation.csv");
            write_validation_csv(&validation_csv, &rows)?;
            let (full_ms, sampled_ms) = rows
                .iter()
                .filter(|r| r.full_ms > 0.0 && r.sampled_ms > 0.0)
                .fold((0.0, 0.0), |(f, s), r| (f + r.full_ms, s + r.sampled_ms));
            Some(SampledValidation {
                cells_within_ci: rows.iter().filter(|r| r.within_ci()).count(),
                speedup: if sampled_ms > 0.0 {
                    full_ms / sampled_ms
                } else {
                    0.0
                },
                rows,
                validation_csv,
                full,
            })
        }
    };

    if let Some(bus) = bus {
        bus.finish();
    }
    Ok(SampledCampaignOutcome {
        cells,
        failures,
        sampling_csv,
        validation,
    })
}

/// Writes the campaign's self-profiler report: one entry per executed
/// cell plus a `total` aggregate, each a per-section `{nanos, calls}`
/// map. Wall-clock data — the one intentionally nondeterministic
/// artifact, kept out of the ledger and the CSVs it feeds.
fn write_profile_json(path: &std::path::Path, cells: &[ObservedCell<'_>]) -> Result<(), SimError> {
    let mut total = ProfileReport::default();
    let mut cell_entries = Vec::new();
    for cell in cells {
        let Some(report) = cell.observations.profile.as_ref() else {
            continue;
        };
        total.merge(report);
        cell_entries.push(JsonValue::Obj(vec![
            ("config".into(), JsonValue::str(cell.config)),
            ("workload".into(), JsonValue::str(cell.workload)),
            ("sections".into(), report.to_json()),
        ]));
    }
    let doc = JsonValue::Obj(vec![
        ("cells".into(), JsonValue::Arr(cell_entries)),
        ("total".into(), total.to_json()),
    ]);
    ziv_common::fsutil::create_parent_dirs(path)?;
    std::fs::write(path, format!("{doc}\n"))
        .map_err(|e| SimError::io("write profile report", path, e))
}

/// Events to attach to a failure record: the failing run's own trailing
/// ring when event tracing was on, otherwise one deterministic re-run
/// of the cell with the tracer enabled (and everything else unchanged,
/// so it fails identically). The common untraced-success path pays
/// nothing for this — only failing cells are ever re-run, and only for
/// failure kinds that terminate on their own (audit violations, cycle
/// budgets). A timed-out or panicking cell is never re-run here: the
/// unsupervised re-trace would hang the runner or kill the worker.
fn failure_events(
    observations: Option<&Observations>,
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
    error: &SimError,
) -> Vec<TraceEvent> {
    if let Some(obs) = observations {
        if !obs.events.is_empty() {
            return obs.events.clone();
        }
    }
    if !matches!(error, SimError::Audit(_) | SimError::BudgetExceeded { .. }) {
        return Vec::new();
    }
    let mut retrace = *opts;
    retrace.observe = ObserveConfig {
        events: Some(EventTraceConfig::default()),
        ..ObserveConfig::disabled()
    };
    let (_, obs) = run_one_traced(spec, workload, &retrace);
    obs.map(|o| o.events).unwrap_or_default()
}
