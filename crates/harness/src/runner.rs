//! The campaign runner: cache partition → parallel execution →
//! ledger append → CSV export.

use crate::campaign::{Campaign, CellDigest};
use crate::ledger::{Ledger, LedgerWriter};
use crate::telemetry::{CellTiming, ProgressSink, Telemetry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use ziv_sim::{
    grid_to_csv, run_cells, speedup_summary, summary_to_csv, GridObserver, GridResult, RunResult,
};
use ziv_workloads::Workload;

/// How to run a campaign.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Directory receiving `ledger.jsonl`, `grid.csv`, `summary.csv`.
    pub results_dir: PathBuf,
    /// Worker threads for the missing cells.
    pub threads: usize,
    /// Reuse an existing ledger (`--resume`). When `false` any
    /// existing ledger is discarded and every cell recomputes.
    pub resume: bool,
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The full grid, cached + fresh, sorted by `(spec, workload)`.
    pub grid: Vec<GridResult>,
    /// Execution summary.
    pub telemetry: Telemetry,
    /// Path of the per-cell CSV.
    pub grid_csv: PathBuf,
    /// Path of the per-config speedup summary CSV.
    pub summary_csv: PathBuf,
    /// Path of the result ledger.
    pub ledger_path: PathBuf,
}

/// Forwards `run_cells` completions into the ledger and the progress
/// sink. Ledger I/O errors are latched (observers cannot propagate)
/// and re-raised after the grid finishes.
struct CampaignObserver<'a> {
    digests: &'a [Vec<CellDigest>],
    writer: &'a LedgerWriter,
    sink: &'a dyn ProgressSink,
    done: AtomicUsize,
    total: usize,
    timings: Mutex<Vec<CellTiming>>,
    io_error: Mutex<Option<std::io::Error>>,
}

impl GridObserver for CampaignObserver<'_> {
    fn cell_finished(
        &self,
        spec_index: usize,
        workload_index: usize,
        result: &RunResult,
        wall: Duration,
    ) {
        if let Err(e) = self
            .writer
            .append(self.digests[spec_index][workload_index], result)
        {
            self.io_error.lock().unwrap().get_or_insert(e);
        }
        let timing = CellTiming {
            spec_index,
            workload_index,
            label: result.label.clone(),
            workload: result.workload.clone(),
            wall,
        };
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.sink.cell_finished(&timing, done, self.total);
        self.timings.lock().unwrap().push(timing);
    }
}

/// Runs `campaign` end-to-end: loads (or resets) the ledger under
/// `cfg.results_dir`, simulates only the cells the ledger does not
/// already hold, appends each as it completes, and writes `grid.csv`
/// plus `summary.csv` over the assembled grid.
///
/// The exported CSVs are byte-identical whether the campaign ran in a
/// single pass or was interrupted and resumed any number of times, at
/// any thread count: cell results are deterministic, cached cells
/// round-trip their `u64` counters exactly, and the grid is assembled
/// in `(spec, workload)` order with the campaign's current labels.
///
/// # Errors
///
/// Propagates I/O errors from the results directory, the ledger, or
/// the CSV files.
pub fn run_campaign(
    campaign: &Campaign,
    cfg: &RunnerConfig,
    sink: &dyn ProgressSink,
) -> std::io::Result<CampaignOutcome> {
    std::fs::create_dir_all(&cfg.results_dir)?;
    let ledger_path = cfg.results_dir.join("ledger.jsonl");
    if !cfg.resume && ledger_path.exists() {
        std::fs::remove_file(&ledger_path)?;
    }
    let ledger = Ledger::load(&ledger_path)?;
    if ledger.skipped_lines() > 0 {
        eprintln!(
            "warning: skipped {} unparseable ledger line(s) in {} (interrupted write?)",
            ledger.skipped_lines(),
            ledger_path.display()
        );
    }

    // Partition the grid against the ledger. Cached results take the
    // campaign's *current* label and workload name (the digest ignores
    // labels, so a relabel must not leak stale names into the CSVs).
    let digests: Vec<Vec<CellDigest>> = (0..campaign.specs.len())
        .map(|s| {
            (0..campaign.recipes.len())
                .map(|w| campaign.cell_digest(s, w))
                .collect()
        })
        .collect();
    let mut grid: Vec<GridResult> = Vec::with_capacity(campaign.total_cells());
    let mut missing: Vec<(usize, usize)> = Vec::new();
    for (s, w) in campaign.cells() {
        match ledger.get(digests[s][w]) {
            Some(cached) => {
                let mut result = cached.clone();
                result.label = campaign.specs[s].label.clone();
                result.workload = campaign.recipes[w].workload_name();
                grid.push(GridResult {
                    spec_index: s,
                    workload_index: w,
                    result,
                });
            }
            None => missing.push((s, w)),
        }
    }
    let cached_cells = grid.len();
    sink.campaign_started(&campaign.name, campaign.total_cells(), cached_cells);

    // Simulate the missing cells, appending each to the ledger as it
    // completes. Workloads are only regenerated when something runs.
    let workers = cfg.threads.max(1).min(missing.len().max(1));
    let started = Instant::now();
    let mut timings = Vec::new();
    if !missing.is_empty() {
        let workloads: Vec<Workload> = campaign.recipes.iter().map(|r| r.build()).collect();
        let writer = LedgerWriter::append_to(&ledger_path)?;
        let observer = CampaignObserver {
            digests: &digests,
            writer: &writer,
            sink,
            done: AtomicUsize::new(cached_cells),
            total: campaign.total_cells(),
            timings: Mutex::new(Vec::with_capacity(missing.len())),
            io_error: Mutex::new(None),
        };
        let fresh = run_cells(
            &campaign.specs,
            &workloads,
            &missing,
            cfg.threads,
            &observer,
        );
        if let Some(e) = observer.io_error.into_inner().unwrap() {
            return Err(e);
        }
        timings = observer.timings.into_inner().unwrap();
        grid.extend(fresh);
    }
    let wall = started.elapsed();
    grid.sort_by_key(|g| (g.spec_index, g.workload_index));
    timings.sort_by_key(|t| (t.spec_index, t.workload_index));

    let telemetry = Telemetry {
        campaign: campaign.name.clone(),
        total_cells: campaign.total_cells(),
        cached_cells,
        executed_cells: missing.len(),
        workers: if missing.is_empty() { 0 } else { workers },
        wall,
        busy: timings.iter().map(|t| t.wall).sum(),
        cells: timings,
    };

    let grid_csv = cfg.results_dir.join("grid.csv");
    grid_to_csv(
        &grid,
        std::io::BufWriter::new(std::fs::File::create(&grid_csv)?),
    )?;
    let summary_csv = cfg.results_dir.join("summary.csv");
    let rows = speedup_summary(&grid, campaign.specs.len(), campaign.baseline_spec);
    summary_to_csv(
        &rows,
        "weighted_speedup",
        std::io::BufWriter::new(std::fs::File::create(&summary_csv)?),
    )?;

    sink.campaign_finished(&telemetry);
    Ok(CampaignOutcome {
        grid,
        telemetry,
        grid_csv,
        summary_csv,
        ledger_path,
    })
}
