//! Run telemetry: per-cell wall-clock timing, a pluggable progress
//! sink, and the campaign's worker-utilization summary.

use std::io::Write;
use std::time::Duration;
use ziv_common::SimError;

/// Timing record of one executed (not cached) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// Index of the cell's spec in the campaign.
    pub spec_index: usize,
    /// Index of the cell's recipe in the campaign.
    pub workload_index: usize,
    /// Spec label (e.g. `"I-LRU 256KB"`).
    pub label: String,
    /// Workload name (e.g. `"homo-circset"`).
    pub workload: String,
    /// Wall-clock cost of simulating the cell.
    pub wall: Duration,
}

/// End-of-campaign execution summary.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Campaign name.
    pub campaign: String,
    /// Total cells in the grid.
    pub total_cells: usize,
    /// Cells satisfied from the ledger without running.
    pub cached_cells: usize,
    /// Cells actually simulated this run.
    pub executed_cells: usize,
    /// Cells that failed (audit violation, watchdog trip, I/O error).
    pub failed_cells: usize,
    /// Worker threads used for the executed cells.
    pub workers: usize,
    /// Wall clock of the execution phase.
    pub wall: Duration,
    /// Sum of per-cell wall clocks (total busy worker time).
    pub busy: Duration,
    /// Per-cell timings of the executed cells, sorted by
    /// `(spec_index, workload_index)`.
    pub cells: Vec<CellTiming>,
}

impl Telemetry {
    /// Fraction of available worker time spent simulating:
    /// `busy / (wall × workers)`. 0 when nothing was executed.
    ///
    /// Clamped to 1.0; [`Telemetry::is_overcommitted`] reports whether
    /// the clamp engaged so the runner can surface the timer skew
    /// instead of hiding it.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        if self.executed_cells == 0 || capacity <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / capacity).min(1.0)
        }
    }

    /// `true` when summed per-cell timers exceed the worker pool's
    /// wall-clock capacity (`busy > wall × workers`) — physically
    /// impossible, so the per-cell timers and the campaign wall clock
    /// disagree (clock skew, suspend/resume, or a mis-sized pool).
    pub fn is_overcommitted(&self) -> bool {
        self.executed_cells > 0
            && self.busy.as_secs_f64() > self.wall.as_secs_f64() * self.workers as f64
    }

    /// The most expensive executed cell, if any ran.
    pub fn slowest(&self) -> Option<&CellTiming> {
        self.cells.iter().max_by_key(|c| c.wall)
    }

    /// Human-readable summary lines (what [`StderrProgress`] prints).
    pub fn summary_lines(&self) -> Vec<String> {
        let failed = if self.failed_cells > 0 {
            format!(", {} FAILED", self.failed_cells)
        } else {
            String::new()
        };
        let mut lines = vec![format!(
            "campaign {}: {} cells ({} cached, {} executed{failed}) in {:.2}s",
            self.campaign,
            self.total_cells,
            self.cached_cells,
            self.executed_cells,
            self.wall.as_secs_f64(),
        )];
        if self.executed_cells > 0 {
            lines.push(format!(
                "workers: {}   busy {:.2}s of {:.2}s capacity ({:.0}% utilization)",
                self.workers,
                self.busy.as_secs_f64(),
                self.wall.as_secs_f64() * self.workers as f64,
                100.0 * self.utilization(),
            ));
            if let Some(s) = self.slowest() {
                lines.push(format!(
                    "slowest cell: {} × {} ({:.2}s)",
                    s.label,
                    s.workload,
                    s.wall.as_secs_f64(),
                ));
            }
        }
        lines
    }
}

/// Windowed-rate ETA estimator for campaign progress.
///
/// A naive ETA extrapolates from total elapsed time, which stays wrong
/// for the rest of the campaign after a slow head cell or a burst of
/// mid-campaign retries. This estimator instead keeps the completion
/// times of the last `window` cells and projects the remaining work at
/// the *recent* rate — `marks-in-window / (now - oldest mark)` — so the
/// estimate recovers as soon as the window rolls past an outlier.
///
/// Time is injected explicitly (durations since an arbitrary campaign
/// epoch), which keeps the estimator deterministic under test and free
/// of clock syscalls at the recording site.
#[derive(Debug, Clone)]
pub struct EtaEstimator {
    window: usize,
    marks: std::collections::VecDeque<Duration>,
}

impl EtaEstimator {
    /// Default window: recent-enough to forget a slow head quickly,
    /// wide enough to smooth worker-count granularity.
    pub const DEFAULT_WINDOW: usize = 16;

    /// Create an estimator averaging over the last `window` completions
    /// (at least 1).
    pub fn new(window: usize) -> Self {
        EtaEstimator {
            window: window.max(1),
            marks: std::collections::VecDeque::new(),
        }
    }

    /// Record a cell completion at `at` (time since the campaign epoch).
    pub fn record(&mut self, at: Duration) {
        if self.marks.len() == self.window {
            self.marks.pop_front();
        }
        self.marks.push_back(at);
    }

    /// Estimated time to finish `remaining` cells, judged at `now`.
    ///
    /// `None` until at least one completion has been recorded or when
    /// the window carries no elapsed time to rate against. With `k`
    /// marks in the window, the recent rate is `k / (now - oldest)`.
    pub fn eta(&self, now: Duration, remaining: usize) -> Option<Duration> {
        if remaining == 0 {
            return Some(Duration::ZERO);
        }
        let oldest = *self.marks.front()?;
        let span = now.checked_sub(oldest)?;
        if span.is_zero() {
            return None;
        }
        let rate = self.marks.len() as f64 / span.as_secs_f64();
        Some(Duration::from_secs_f64(remaining as f64 / rate))
    }
}

/// Receiver of campaign progress events. Called from worker threads;
/// implementations must be `Sync`. All methods default to no-ops so a
/// sink overrides only what it cares about.
pub trait ProgressSink: Sync {
    /// The campaign's cells have been partitioned; execution starts.
    fn campaign_started(&self, campaign: &str, total_cells: usize, cached_cells: usize) {
        let _ = (campaign, total_cells, cached_cells);
    }

    /// One cell finished simulating. `done` counts finished cells
    /// including the cached ones, out of `total`.
    fn cell_finished(&self, timing: &CellTiming, done: usize, total: usize) {
        let _ = (timing, done, total);
    }

    /// One cell failed (audit violation, watchdog trip). The campaign
    /// continues unless it runs `--strict`; `done` counts settled cells
    /// (finished or failed, including cached), out of `total`.
    fn cell_failed(
        &self,
        label: &str,
        workload: &str,
        error: &SimError,
        done: usize,
        total: usize,
    ) {
        let _ = (label, workload, error, done, total);
    }

    /// The campaign completed (CSVs written).
    fn campaign_finished(&self, telemetry: &Telemetry) {
        let _ = telemetry;
    }

    /// Out-of-band diagnostic the campaign wants surfaced (e.g. timer
    /// skew detected by [`Telemetry::is_overcommitted`]). Emitted after
    /// the cells settle, never from worker threads mid-line.
    fn warning(&self, message: &str) {
        let _ = message;
    }
}

/// The silent sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ProgressSink for NullSink {}

/// Live progress on stderr: one rewriting `\r` status line while cells
/// execute, then the telemetry summary. Stdout is left untouched for
/// result tables.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn campaign_started(&self, campaign: &str, total_cells: usize, cached_cells: usize) {
        eprintln!(
            "campaign {campaign}: {total_cells} cells, {cached_cells} cached, {} to run",
            total_cells - cached_cells
        );
    }

    fn cell_finished(&self, timing: &CellTiming, done: usize, total: usize) {
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[{done}/{total}] {} × {} ({:.2}s)\x1b[K",
            timing.label,
            timing.workload,
            timing.wall.as_secs_f64(),
        );
        let _ = err.flush();
    }

    fn cell_failed(
        &self,
        label: &str,
        workload: &str,
        error: &SimError,
        done: usize,
        total: usize,
    ) {
        let mut err = std::io::stderr().lock();
        // End the \r status line so the failure stays visible.
        let _ = writeln!(
            err,
            "\r[{done}/{total}] {label} × {workload} FAILED: {error}\x1b[K"
        );
        let _ = err.flush();
    }

    fn campaign_finished(&self, telemetry: &Telemetry) {
        let mut err = std::io::stderr().lock();
        if telemetry.executed_cells > 0 {
            let _ = writeln!(err); // end the \r status line
        }
        for line in telemetry.summary_lines() {
            let _ = writeln!(err, "{line}");
        }
    }

    fn warning(&self, message: &str) {
        eprintln!("warning: {message}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry(executed: usize, wall_ms: u64, busy_ms: u64, workers: usize) -> Telemetry {
        Telemetry {
            campaign: "t".into(),
            total_cells: executed + 3,
            cached_cells: 3,
            executed_cells: executed,
            failed_cells: 0,
            workers,
            wall: Duration::from_millis(wall_ms),
            busy: Duration::from_millis(busy_ms),
            cells: (0..executed)
                .map(|i| CellTiming {
                    spec_index: 0,
                    workload_index: i,
                    label: "L".into(),
                    workload: format!("w{i}"),
                    wall: Duration::from_millis(10 * (i as u64 + 1)),
                })
                .collect(),
        }
    }

    #[test]
    fn utilization_is_busy_over_capacity() {
        let t = telemetry(4, 100, 300, 4);
        assert!((t.utilization() - 0.75).abs() < 1e-9);
        // Clamped to 1 even with measurement jitter.
        assert_eq!(telemetry(4, 100, 900, 4).utilization(), 1.0);
        // Nothing executed → 0, never NaN.
        assert_eq!(telemetry(0, 0, 0, 0).utilization(), 0.0);
    }

    #[test]
    fn overcommit_is_detected_not_hidden() {
        // Healthy run: within capacity.
        assert!(!telemetry(4, 100, 300, 4).is_overcommitted());
        // busy > wall × workers: the clamp engages AND the skew is
        // reported, so callers can warn instead of silently showing
        // a flattering 100%.
        let skewed = telemetry(4, 100, 900, 4);
        assert_eq!(skewed.utilization(), 1.0);
        assert!(skewed.is_overcommitted());
        // Nothing executed: never overcommitted (capacity is 0).
        assert!(!telemetry(0, 0, 0, 0).is_overcommitted());
    }

    #[test]
    fn eta_starts_unknown_and_learns_a_rate() {
        let mut eta = EtaEstimator::new(4);
        assert_eq!(eta.eta(Duration::from_secs(5), 10), None);
        eta.record(Duration::from_secs(1));
        eta.record(Duration::from_secs(2));
        // 2 completions in the 2s window ending at t=3 → 1 cell/s.
        let e = eta.eta(Duration::from_secs(3), 6).unwrap();
        assert!((e.as_secs_f64() - 6.0).abs() < 1e-9, "{e:?}");
        // Zero remaining is always "done now".
        assert_eq!(eta.eta(Duration::from_secs(3), 0), Some(Duration::ZERO));
        // A window with no elapsed span can't rate anything.
        let mut flat = EtaEstimator::new(4);
        flat.record(Duration::from_secs(7));
        assert_eq!(flat.eta(Duration::from_secs(7), 3), None);
    }

    #[test]
    fn eta_window_forgets_slow_head_cells() {
        // One pathological 100s head cell, then steady 1s cells. A
        // total-elapsed extrapolation would still charge the head to
        // every remaining cell (~21s/cell here); the 4-wide window
        // must recover to the recent ~1s cadence once it rolls.
        let mut eta = EtaEstimator::new(4);
        eta.record(Duration::from_secs(100));
        for t in [101, 102, 103, 104] {
            eta.record(Duration::from_secs(t));
        }
        let now = Duration::from_secs(105);
        let e = eta.eta(now, 10).unwrap().as_secs_f64();
        // 4 marks over the [101s, 105s] window → 1 cell/s → ~10s.
        assert!((e - 10.0).abs() < 1e-9, "windowed eta was {e}s");
        let naive = now.as_secs_f64() / 5.0 * 10.0;
        assert!(naive > 200.0, "the naive estimate this guards against");

        // Retries mid-campaign slow the window; the estimate tracks it.
        let mut eta = EtaEstimator::new(2);
        for t in [1, 2, 10, 18] {
            eta.record(Duration::from_secs(t));
        }
        // Window is [10s, 18s]: 2 marks over 16s ending at t=26 → 8s/cell.
        let e = eta.eta(Duration::from_secs(26), 2).unwrap().as_secs_f64();
        assert!((e - 16.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn slowest_and_summary() {
        let t = telemetry(3, 100, 60, 2);
        assert_eq!(t.slowest().unwrap().workload, "w2");
        let lines = t.summary_lines();
        assert!(lines[0].contains("6 cells (3 cached, 3 executed)"));
        assert!(lines.iter().any(|l| l.contains("utilization")));
        assert!(lines.iter().any(|l| l.contains("slowest cell")));
        // Fully cached: just the one line.
        assert_eq!(telemetry(0, 0, 0, 0).summary_lines().len(), 1);
    }
}
