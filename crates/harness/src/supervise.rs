//! The supervised worker pool: watchdog-cancelled cells, per-worker
//! panic containment, and bounded deterministic retry.
//!
//! [`run_cells_supervised`] is the campaign runner's execution engine.
//! It extends the fault isolation of `ziv_sim::run_cells_checked` with
//! the three failure modes that layer cannot contain:
//!
//! - **Hangs.** Each attempt runs under a [`CancelToken`] registered in
//!   a per-worker watch slot; a single watchdog thread scans the slots
//!   and cancels any cell past its wall-clock budget
//!   ([`SuperviseConfig::cell_timeout`]). The driver's access loop
//!   polls the token cooperatively, so a cancelled cell stops at the
//!   next access — even one wedged by an injected `hang-core` fault —
//!   and is ledgered as [`SimError::Timeout`].
//! - **Panics.** Every attempt runs inside `catch_unwind`: a panic deep
//!   in the model becomes one [`SimError::Internal`] failure for that
//!   cell instead of a dead worker and a wedged campaign.
//! - **Transient I/O.** A failed attempt whose error
//!   [`SimError::is_transient`] qualifies is retried under the
//!   deterministic [`RetryPolicy`] backoff schedule; the attempt count
//!   is reported to the observer so the ledger records it.
//!
//! With no timeout and no retries ([`SuperviseConfig::unsupervised`])
//! the pool is behaviorally identical to `run_cells_checked` — same
//! claiming order, same results, same observer cadence — which is what
//! keeps clean-campaign ledgers byte-identical to the pre-supervision
//! harness.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use ziv_common::{RetryPolicy, SimError};
use ziv_core::CancelToken;
use ziv_sim::{
    run_one_instrumented, run_one_supervised, Observations, RunOptions, RunResult, RunSpec,
    TelemetryProbe,
};
use ziv_workloads::Workload;

/// Supervision knobs for a campaign run.
#[derive(Debug, Clone, Copy)]
pub struct SuperviseConfig {
    /// Wall-clock budget per cell attempt (`--cell-timeout`). Bounds
    /// how long any cell — however slow — may run.
    pub cell_timeout: Option<Duration>,
    /// No-forward-progress budget per cell attempt (`--stall-window`):
    /// a cell whose access counter stops advancing for this long is
    /// cancelled. Catches a wedged cell in milliseconds where the
    /// wall-clock budget must stay generous enough for legitimately
    /// slow cells.
    pub stall_window: Option<Duration>,
    /// Retry policy for transient failures (`--retries`).
    pub retry: RetryPolicy,
    /// Watchdog scan interval. Only the cancellation *latency* depends
    /// on it; results never do.
    pub poll: Duration,
}

impl SuperviseConfig {
    /// No watchdog, no retries: byte-identical to the pre-supervision
    /// pool. With neither budget set, cells run without a cancellation
    /// token — the zero-cost unarmed path.
    pub fn unsupervised() -> Self {
        SuperviseConfig {
            cell_timeout: None,
            stall_window: None,
            retry: RetryPolicy::none(),
            poll: Duration::from_millis(5),
        }
    }

    /// Whether any supervision feature is armed.
    pub fn is_active(&self) -> bool {
        self.watched() || self.retry.max_attempts > 1
    }

    /// Whether cells need a cancellation token and a watchdog thread.
    fn watched(&self) -> bool {
        self.cell_timeout.is_some() || self.stall_window.is_some()
    }
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        Self::unsupervised()
    }
}

/// How many workers contend for each hardware thread:
/// `ceil(workers / available_parallelism)`, minimum 1.
///
/// On an oversubscribed host the OS time-slices the workers, so a cell
/// can sit unscheduled — making *no* forward progress — for several
/// scheduling quanta while being perfectly healthy. Any stall budget
/// chosen for the uncontended case must stretch by this factor.
pub fn oversubscription_factor(workers: usize) -> u32 {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = workers.max(1);
    workers.div_ceil(cores).max(1) as u32
}

/// Derives a default stall window from an uncontended `base` budget by
/// scaling it with [`oversubscription_factor`]: `workers` pool threads
/// sharing one core get `workers ×` the base window before the
/// watchdog may call a progressing-but-starved cell stalled.
///
/// This is for *derived defaults* only — an explicit `--stall-window`
/// is authoritative and must not pass through here (an operator who
/// asked for 400 ms gets 400 ms).
pub fn default_stall_window(base: Duration, workers: usize) -> Duration {
    base * oversubscription_factor(workers)
}

/// Observer of supervised cell execution — the attempt-aware sibling of
/// `ziv_sim::GridObserver`, called from worker threads.
pub trait SuperviseObserver: Sync {
    /// A worker picked up cell `(spec_index, workload_index)`.
    fn cell_started(&self, spec_index: usize, workload_index: usize) {
        let _ = (spec_index, workload_index);
    }

    /// A cell completed after `attempts` attempts (1 = first try).
    fn cell_finished(
        &self,
        spec_index: usize,
        workload_index: usize,
        result: &RunResult,
        attempts: u32,
        wall: Duration,
    ) {
        let _ = (spec_index, workload_index, result, attempts, wall);
    }

    /// A cell failed after `attempts` attempts (retries exhausted or
    /// the error was not transient).
    fn cell_failed(
        &self,
        spec_index: usize,
        workload_index: usize,
        error: &SimError,
        attempts: u32,
        wall: Duration,
    ) {
        let _ = (spec_index, workload_index, error, attempts, wall);
    }

    /// Polled before claiming the next cell; `true` stops the grid
    /// early (`--strict`). Cells in flight still settle.
    fn should_abort(&self) -> bool {
        false
    }
}

/// The do-nothing [`SuperviseObserver`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSuperviseObserver;

impl SuperviseObserver for NoopSuperviseObserver {}

/// One cell's outcome under the supervised pool.
#[derive(Debug)]
pub struct SupervisedRun {
    /// Index of the spec in the grid's spec list.
    pub spec_index: usize,
    /// Index of the workload in the grid's workload list.
    pub workload_index: usize,
    /// The run's results, or the error of its final attempt.
    pub outcome: Result<RunResult, SimError>,
    /// Flight-recorder payload of the final attempt, when observing.
    pub observations: Option<Box<Observations>>,
    /// Attempts made (1 = no retries were needed).
    pub attempts: u32,
}

/// A cell attempt currently under watch: its token, its wall-clock
/// deadline, and its progress history for stall detection.
struct Watch {
    token: CancelToken,
    deadline: Option<Instant>,
    timeout: Option<Duration>,
    last_progress: u64,
    last_advance: Instant,
}

impl Watch {
    fn new(token: CancelToken, timeout: Option<Duration>) -> Watch {
        let now = Instant::now();
        Watch {
            token,
            deadline: timeout.map(|t| now + t),
            timeout,
            last_progress: 0,
            last_advance: now,
        }
    }

    /// One watchdog scan over this attempt; cancels on a blown budget.
    fn check(&mut self, now: Instant, stall_window: Option<Duration>) {
        if self.token.is_cancelled() {
            return;
        }
        if let (Some(deadline), Some(timeout)) = (self.deadline, self.timeout) {
            if now >= deadline {
                self.token.cancel(format!(
                    "wall-clock budget {}ms exceeded ({} accesses issued)",
                    timeout.as_millis(),
                    self.token.progress()
                ));
                return;
            }
        }
        if let Some(window) = stall_window {
            let progress = self.token.progress();
            if progress != self.last_progress {
                self.last_progress = progress;
                self.last_advance = now;
            } else if now.duration_since(self.last_advance) >= window {
                self.token.cancel(format!(
                    "no forward progress for {}ms (stalled near access {progress})",
                    window.as_millis()
                ));
            }
        }
    }
}

/// Renders a `catch_unwind` payload into the human-readable fragment of
/// a [`SimError::Internal`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `attempt_fn` under `policy`, sleeping `sleep_ms` between
/// attempts. Returns the final outcome and the number of attempts made.
/// `attempt_fn` receives the 1-based attempt number.
fn execute_with_retry_with<T>(
    policy: &RetryPolicy,
    mut sleep_ms: impl FnMut(u64),
    mut attempt_fn: impl FnMut(u32) -> Result<T, SimError>,
) -> (Result<T, SimError>, u32) {
    let mut attempt = 1u32;
    loop {
        match attempt_fn(attempt) {
            Ok(v) => return (Ok(v), attempt),
            Err(e) if policy.should_retry(&e, attempt) => {
                sleep_ms(policy.backoff.delay_ms(attempt));
                attempt += 1;
            }
            Err(e) => return (Err(e), attempt),
        }
    }
}

/// Runs `attempt_fn` under `policy` with real backoff sleeps. See
/// [`RetryPolicy`]: only transient errors are retried, and the delay
/// schedule is deterministic per seed.
pub fn execute_with_retry<T>(
    policy: &RetryPolicy,
    attempt_fn: impl FnMut(u32) -> Result<T, SimError>,
) -> (Result<T, SimError>, u32) {
    execute_with_retry_with(
        policy,
        |ms| std::thread::sleep(Duration::from_millis(ms)),
        attempt_fn,
    )
}

/// One guarded attempt: panic containment always; a watchdog token
/// registered in the given slot when `watch` is provided (the inner
/// `Option<Duration>` is the attempt's wall-clock budget).
fn run_attempt(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
    watch: Option<(&Mutex<Option<Watch>>, Option<Duration>)>,
    probe: Option<&dyn TelemetryProbe>,
) -> (Result<RunResult, SimError>, Option<Box<Observations>>) {
    let token = watch.map(|(slot, timeout)| {
        let token = CancelToken::new();
        *slot.lock().unwrap() = Some(Watch::new(token.clone(), timeout));
        token
    });
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_one_instrumented(spec, workload, opts, token.as_ref(), probe)
    }));
    if let Some((slot, _)) = watch {
        *slot.lock().unwrap() = None;
    }
    match outcome {
        Ok((result, observations)) => (result, observations),
        Err(payload) => (
            Err(SimError::Internal(panic_message(payload.as_ref()))),
            None,
        ),
    }
}

/// Runs one cell to completion under full supervision but outside any
/// pool: panic containment plus an optional wall-clock watchdog on a
/// dedicated thread. Used by `zivsim replay` so that replaying a
/// hang-core repro record reproduces its `Timeout` instead of wedging
/// the CLI.
pub fn run_one_guarded(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
    timeout: Option<Duration>,
) -> (Result<RunResult, SimError>, Option<Box<Observations>>) {
    let Some(timeout) = timeout else {
        return run_attempt(spec, workload, opts, None, None);
    };
    let token = CancelToken::new();
    let done = std::sync::Arc::new(AtomicBool::new(false));
    let watchdog = {
        let token = token.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + timeout;
            while !done.load(Ordering::Acquire) {
                if Instant::now() >= deadline {
                    token.cancel(format!(
                        "wall-clock budget {}ms exceeded",
                        timeout.as_millis()
                    ));
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_one_supervised(spec, workload, opts, Some(&token))
    }));
    done.store(true, Ordering::Release);
    let _ = watchdog.join();
    match outcome {
        Ok((result, observations)) => (result, observations),
        Err(payload) => (
            Err(SimError::Internal(panic_message(payload.as_ref()))),
            None,
        ),
    }
}

/// The supervised worker pool. Runs the listed
/// `(spec_index, workload_index)` cells across `threads` workers, each
/// attempt guarded by panic containment, the optional watchdog, and the
/// retry policy (see the module docs). Results are sorted by
/// `(spec_index, workload_index)`; cells skipped by
/// [`SuperviseObserver::should_abort`] are absent.
///
/// # Panics
///
/// Panics if a cell index is out of range for `specs` / `workloads`.
pub fn run_cells_supervised(
    specs: &[RunSpec],
    workloads: &[Workload],
    cells: &[(usize, usize)],
    threads: usize,
    opts: &RunOptions,
    sup: &SuperviseConfig,
    observer: &dyn SuperviseObserver,
) -> Vec<SupervisedRun> {
    run_cells_supervised_probed(specs, workloads, cells, threads, opts, sup, observer, None)
}

/// [`run_cells_supervised`] plus optional per-worker live-telemetry
/// probes: worker slot `i` uses `probes[i]` for every cell it claims,
/// bracketing each retry attempt with `cell_begin`/`cell_end` and
/// threading the probe into the sim driver's hot-loop publish site.
/// Probes observe, never steer — results are byte-identical with and
/// without them, and `probes == None` is the exact pre-telemetry path.
///
/// # Panics
///
/// Panics if a cell index is out of range for `specs` / `workloads`,
/// or if fewer probes are supplied than worker slots.
#[allow(clippy::too_many_arguments)]
pub fn run_cells_supervised_probed(
    specs: &[RunSpec],
    workloads: &[Workload],
    cells: &[(usize, usize)],
    threads: usize,
    opts: &RunOptions,
    sup: &SuperviseConfig,
    observer: &dyn SuperviseObserver,
    probes: Option<&[Box<dyn TelemetryProbe>]>,
) -> Vec<SupervisedRun> {
    for &(s, w) in cells {
        assert!(s < specs.len(), "spec index {s} out of range");
        assert!(w < workloads.len(), "workload index {w} out of range");
    }
    let total = cells.len();
    let next = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let results: Mutex<Vec<SupervisedRun>> = Mutex::new(Vec::with_capacity(total));
    let workers = threads.max(1).min(total.max(1));
    if let Some(p) = probes {
        assert!(
            p.len() >= workers,
            "{} probes for {workers} worker slots",
            p.len()
        );
    }
    let active = AtomicUsize::new(workers);
    let slots: Vec<Mutex<Option<Watch>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    // Worker i owns probe i for the whole pool lifetime — the
    // segment's single-writer-per-record contract.
    let worker_probes: Vec<Option<&dyn TelemetryProbe>> = (0..workers)
        .map(|i| probes.map(|p| p[i].as_ref()))
        .collect();

    std::thread::scope(|scope| {
        // One watchdog for the whole pool: scan the per-worker watch
        // slots and cancel anything past its wall-clock deadline or
        // stalled beyond the progress window. It exits when the last
        // worker retires, which `thread::scope` then joins.
        if sup.watched() {
            scope.spawn(|| {
                while active.load(Ordering::Acquire) > 0 {
                    for slot in &slots {
                        if let Some(watch) = slot.lock().unwrap().as_mut() {
                            watch.check(Instant::now(), sup.stall_window);
                        }
                    }
                    std::thread::sleep(sup.poll);
                }
            });
        }
        for (slot, probe) in slots.iter().zip(worker_probes.iter()) {
            scope.spawn(|| {
                let probe = *probe;
                loop {
                    if aborted.load(Ordering::Relaxed) || observer.should_abort() {
                        aborted.store(true, Ordering::Relaxed);
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    let (spec_index, workload_index) = cells[idx];
                    observer.cell_started(spec_index, workload_index);
                    let started = Instant::now();
                    let mut observations = None;
                    let (outcome, attempts) = execute_with_retry(&sup.retry, |attempt| {
                        if let Some(p) = probe {
                            p.cell_begin(
                                spec_index as u64,
                                workload_index as u64,
                                attempt as u64,
                                workloads[workload_index].total_accesses(),
                                &specs[spec_index].label,
                                &workloads[workload_index].name,
                            );
                        }
                        let (outcome, obs) = run_attempt(
                            &specs[spec_index],
                            &workloads[workload_index],
                            opts,
                            sup.watched().then_some((slot, sup.cell_timeout)),
                            probe,
                        );
                        if let Some(p) = probe {
                            p.cell_end();
                        }
                        observations = obs;
                        outcome
                    });
                    match &outcome {
                        Ok(result) => observer.cell_finished(
                            spec_index,
                            workload_index,
                            result,
                            attempts,
                            started.elapsed(),
                        ),
                        Err(error) => observer.cell_failed(
                            spec_index,
                            workload_index,
                            error,
                            attempts,
                            started.elapsed(),
                        ),
                    }
                    results.lock().unwrap().push(SupervisedRun {
                        spec_index,
                        workload_index,
                        outcome,
                        observations,
                        attempts,
                    });
                }
                active.fetch_sub(1, Ordering::Release);
            });
        }
    });

    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|g| (g.spec_index, g.workload_index));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::BackoffSchedule;

    fn transient() -> SimError {
        SimError::io("flaky append", "/tmp/x", std::io::Error::other("EIO"))
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let policy = RetryPolicy::with_retries(3, 0x2026);
        let mut slept = Vec::new();
        let mut calls = 0;
        let (out, attempts) = execute_with_retry_with(
            &policy,
            |ms| slept.push(ms),
            |attempt| {
                calls += 1;
                assert_eq!(attempt, calls);
                if calls < 3 {
                    Err(transient())
                } else {
                    Ok(42)
                }
            },
        );
        assert_eq!(out.unwrap(), 42);
        assert_eq!(attempts, 3);
        let sched = policy.backoff;
        assert_eq!(slept, vec![sched.delay_ms(1), sched.delay_ms(2)]);
    }

    #[test]
    fn retry_gives_up_at_the_attempt_cap() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: BackoffSchedule {
                base_ms: 1,
                max_ms: 1,
                seed: 0,
            },
        };
        let mut calls = 0u32;
        let (out, attempts) = execute_with_retry_with(
            &policy,
            |_| {},
            |_| {
                calls += 1;
                Err::<(), _>(transient())
            },
        );
        assert!(out.is_err());
        assert_eq!(attempts, 3);
        assert_eq!(calls, 3);
    }

    #[test]
    fn deterministic_errors_never_retry() {
        let policy = RetryPolicy::with_retries(5, 0);
        let mut calls = 0u32;
        let (out, attempts) = execute_with_retry_with(
            &policy,
            |_| panic!("must not sleep"),
            |_| {
                calls += 1;
                Err::<(), _>(SimError::Config("bad".into()))
            },
        );
        assert_eq!(out.unwrap_err().kind_tag(), "config");
        assert_eq!(attempts, 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn oversubscription_scales_the_default_stall_window() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // A pool no larger than the machine is not oversubscribed: the
        // base window passes through unchanged.
        assert_eq!(oversubscription_factor(1), 1);
        assert_eq!(oversubscription_factor(cores), 1);
        assert_eq!(
            default_stall_window(Duration::from_millis(750), cores),
            Duration::from_millis(750)
        );
        // Workers beyond the core count stretch the window by the
        // time-slicing factor, rounding up so a partial extra worker
        // still buys a full extra quantum.
        assert_eq!(oversubscription_factor(cores * 4), 4);
        assert_eq!(oversubscription_factor(cores * 4 + 1), 5);
        assert_eq!(
            default_stall_window(Duration::from_millis(200), cores * 4),
            Duration::from_millis(800)
        );
        // Degenerate pool sizes never collapse the window to zero.
        assert_eq!(oversubscription_factor(0), 1);
    }

    #[test]
    fn panic_payloads_render() {
        let p = catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom 7");
        let p = catch_unwind(|| std::panic::panic_any(13u32)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
