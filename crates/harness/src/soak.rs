//! The deterministic chaos-soak drill behind `zivsim soak`.
//!
//! [`run_soak`] proves the supervision stack end-to-end, in four acts:
//!
//! 1. **Fault-free pass.** The `soak` campaign runs clean into
//!    `<dir>/baseline`; any failure here is a real defect, not chaos.
//! 2. **Chaos pass.** [`campaigns::soak_chaos`] arms one injected fault
//!    on each of five specs (seeded, deterministic) and the same grid
//!    runs into `<dir>/chaos` under full supervision: sampled
//!    invariant auditing, a wall-clock + progress-stall watchdog, and
//!    panic containment.
//! 3. **Isolation audit.** Every injected fault must land as a ledgered
//!    failure of the *expected kind* with a replayable repro record —
//!    and every cell that still succeeded (healthy specs, or a fault
//!    whose trigger never fired) must export a `grid.csv` row
//!    byte-identical to the fault-free pass. A fault that silently
//!    corrupted a "successful" cell cannot pass this gate.
//! 4. **Crash-recovery drill.** The chaos ledger is truncated
//!    mid-record — the kill -9 footprint — and the campaign re-runs
//!    with `--resume`. Recovery must detect the torn tail, re-run only
//!    the lost and failed cells, and reproduce `grid.csv` /
//!    `summary.csv` byte-for-byte.
//!
//! The report's [`SoakReport::violations`] list is the verdict: empty
//! means every fault was isolated and every guarantee held.

use crate::campaign::{campaigns, CampaignParams};
use crate::runner::{run_campaign, RunnerConfig};
use crate::telemetry::ProgressSink;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::Duration;
use ziv_common::SimError;
use ziv_core::{AuditCadence, FaultInjection};

/// How to run the soak drill.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Directory receiving the `baseline/` and `chaos/` result trees.
    pub results_dir: PathBuf,
    /// Worker threads for both passes.
    pub threads: usize,
    /// Campaign parameters (seed drives the chaos schedule too).
    pub params: CampaignParams,
    /// Wall-clock budget per cell attempt — the hard backstop. Keep it
    /// generous: hung cells are caught far earlier by `stall_window`,
    /// so this only has to accommodate the slowest *healthy* cell.
    pub cell_timeout: Duration,
    /// No-forward-progress budget: how quickly a wedged cell (the
    /// hang-core fault) is cancelled. Healthy cells report progress
    /// every 256 accesses, so even unoptimized debug builds stay well
    /// inside a few hundred milliseconds — *when each worker owns a
    /// core*. The default scales the base window by the pool's
    /// oversubscription factor so time-sliced workers are not starved
    /// into false stalls; an explicit value here (or `--stall-window`)
    /// is authoritative and used verbatim.
    pub stall_window: Duration,
    /// Extra attempts for transiently failing cells.
    pub retries: u32,
    /// Publish the live telemetry segment for each pass
    /// (`--telemetry on`). Each pass writes its own
    /// `telemetry.shm` under its pass directory (`baseline/`,
    /// `chaos/`), so `zivsim watch` follows whichever pass is running.
    pub telemetry: bool,
    /// Emit JSONL heartbeat lines to stderr (`--progress jsonl`).
    pub progress_jsonl: bool,
}

impl SoakConfig {
    /// Defaults: 2 threads, env-sized params, 60 s wall clock, a 750 ms
    /// base stall window scaled by the host's oversubscription factor
    /// (see [`crate::default_stall_window`]), no retries.
    pub fn new(results_dir: impl Into<PathBuf>) -> Self {
        let threads = 2;
        SoakConfig {
            results_dir: results_dir.into(),
            threads,
            params: CampaignParams::from_env(),
            cell_timeout: Duration::from_secs(60),
            stall_window: crate::supervise::default_stall_window(
                Duration::from_millis(750),
                threads,
            ),
            retries: 0,
            telemetry: false,
            progress_jsonl: false,
        }
    }
}

/// What the soak drill observed.
#[derive(Debug)]
pub struct SoakReport {
    /// Cells per pass.
    pub total_cells: usize,
    /// Failures the chaos pass isolated.
    pub chaos_failures: usize,
    /// The seeded fault plan: `(spec label, fault kind, trigger access)`.
    pub fault_plan: Vec<(String, String, u64)>,
    /// Chaos-pass cells whose `grid.csv` rows matched the fault-free
    /// pass byte-for-byte (healthy cells plus unfired faults).
    pub identical_rows: usize,
    /// Whether the crash-recovery drill detected the torn tail.
    pub torn_tail_detected: bool,
    /// Cells the resume pass re-simulated (lost + failed cells only).
    pub resumed_cells: usize,
    /// Every broken guarantee, human-readable. Empty = drill passed.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// Whether every supervision guarantee held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The [`SimError::kind_tag`] each injector must produce when it fires
/// under sampled auditing and the stall-detecting watchdog.
fn expected_kind(fault: &FaultInjection) -> &'static str {
    match fault {
        FaultInjection::CorruptDirectory { .. } => "audit",
        FaultInjection::SkipBackInvalidation { .. } => "audit",
        FaultInjection::StallCore { .. } => "budget-exceeded",
        FaultInjection::HangCore { .. } => "timeout",
        FaultInjection::PanicCore { .. } => "internal",
    }
}

/// `grid.csv` rows keyed by their `(config, workload)` prefix.
fn grid_rows(path: &Path) -> Result<BTreeMap<String, String>, SimError> {
    let text = std::fs::read_to_string(path).map_err(|e| SimError::io("read grid csv", path, e))?;
    Ok(text
        .lines()
        .skip(1)
        .map(|line| {
            let key = line.splitn(3, ',').take(2).collect::<Vec<_>>().join(",");
            (key, line.to_string())
        })
        .collect())
}

/// Runs the full chaos-soak drill (see the module docs). The result is
/// a report, not an error: injected faults failing their cells is the
/// *expected* outcome, and broken guarantees are returned in
/// [`SoakReport::violations`] for the caller to turn into an exit code.
///
/// # Errors
///
/// Returns [`SimError::Io`] only for infrastructure failures (results
/// directory, ledger, CSV I/O) — never for isolated cell failures.
pub fn run_soak(cfg: &SoakConfig, sink: &dyn ProgressSink) -> Result<SoakReport, SimError> {
    let mut violations = Vec::new();
    let baseline_campaign =
        campaigns::by_name("soak", &cfg.params).expect("soak campaign is registered");
    let (chaos_campaign, faults) = campaigns::soak_chaos(&cfg.params);
    let faulted: BTreeMap<usize, FaultInjection> =
        faults.iter().map(|f| (f.spec_index, f.fault)).collect();

    // Act 1: the fault-free pass. Supervised identically to the chaos
    // pass (same audit, same watchdog) so the two passes differ only in
    // the injected faults.
    // Sampled auditing: detection lands within one sample interval of
    // the injected corruption (deterministically — the cadence clock is
    // per-cell), at a per-access cost the wall-clock budget can absorb.
    // Every-access auditing here would make *healthy* cells slower than
    // the watchdog budget, drowning the drill in false timeouts.
    let pass_cfg = |dir: PathBuf| RunnerConfig {
        threads: cfg.threads,
        audit: AuditCadence::Sampled { one_in: 64 },
        params: Some(cfg.params),
        cell_timeout: Some(cfg.cell_timeout),
        stall_window: Some(cfg.stall_window),
        retries: cfg.retries,
        telemetry: cfg.telemetry,
        progress_jsonl: cfg.progress_jsonl,
        ..RunnerConfig::new(dir)
    };
    let baseline_cfg = pass_cfg(cfg.results_dir.join("baseline"));
    let baseline = run_campaign(&baseline_campaign, &baseline_cfg, sink)?;
    for f in &baseline.failures {
        violations.push(format!(
            "fault-free pass failed cell [{} / {}]: {}",
            f.label, f.workload, f.error
        ));
    }

    // Act 2: the chaos pass.
    let chaos_cfg = pass_cfg(cfg.results_dir.join("chaos"));
    let chaos = run_campaign(&chaos_campaign, &chaos_cfg, sink)?;

    // Act 3: the isolation audit.
    let mut fired_specs = BTreeSet::new();
    for f in &chaos.failures {
        match faulted.get(&f.spec_index) {
            None => violations.push(format!(
                "healthy spec [{}] failed under chaos: {}",
                f.label, f.error
            )),
            Some(fault) => {
                fired_specs.insert(f.spec_index);
                let expected = expected_kind(fault);
                if f.error.kind_tag() != expected {
                    violations.push(format!(
                        "fault {} on [{}] ledgered as '{}' (expected '{}')",
                        fault.kind_str(),
                        f.label,
                        f.error.kind_tag(),
                        expected
                    ));
                }
                match &f.record_path {
                    Some(path) if path.is_file() => {}
                    _ => violations.push(format!(
                        "fault {} on [{} / {}] left no replayable repro record",
                        fault.kind_str(),
                        f.label,
                        f.workload
                    )),
                }
            }
        }
    }
    for (spec_index, fault) in &faulted {
        if !fired_specs.contains(spec_index) {
            violations.push(format!(
                "injected fault {} on [{}] never fired in any cell",
                fault.kind_str(),
                chaos_campaign.specs[*spec_index].label
            ));
        }
    }
    let baseline_rows = grid_rows(&baseline.grid_csv)?;
    let chaos_rows = grid_rows(&chaos.grid_csv)?;
    let mut identical_rows = 0;
    for (key, row) in &chaos_rows {
        match baseline_rows.get(key) {
            Some(b) if b == row => identical_rows += 1,
            Some(_) => violations.push(format!(
                "surviving chaos cell [{key}] diverged from the fault-free pass \
                 (a fault corrupted a 'successful' result)"
            )),
            None => violations.push(format!("chaos cell [{key}] has no fault-free counterpart")),
        }
    }

    // Act 4: the crash-recovery drill. Tear the chaos ledger's tail
    // mid-record (what kill -9 during an append leaves behind), resume,
    // and require byte-identical exports.
    let grid_before = std::fs::read(&chaos.grid_csv)
        .map_err(|e| SimError::io("read grid csv", &chaos.grid_csv, e))?;
    let summary_before = std::fs::read(&chaos.summary_csv)
        .map_err(|e| SimError::io("read summary csv", &chaos.summary_csv, e))?;
    let ledger_bytes = std::fs::read(&chaos.ledger_path)
        .map_err(|e| SimError::io("read ledger", &chaos.ledger_path, e))?;
    let torn_len = ledger_bytes.len().saturating_sub(10);
    std::fs::write(&chaos.ledger_path, &ledger_bytes[..torn_len])
        .map_err(|e| SimError::io("tear ledger tail", &chaos.ledger_path, e))?;
    let resume_cfg = RunnerConfig {
        resume: true,
        ..chaos_cfg
    };
    let resumed = run_campaign(&chaos_campaign, &resume_cfg, sink)?;
    if !resumed.recovery.torn_tail {
        violations.push("resume after mid-append kill did not detect the torn tail".into());
    }
    // Only the torn-off cell (if it was a success line) plus the failed
    // cells — which never satisfy the ledger — may re-run.
    let resumed_cells = resumed.telemetry.executed_cells + resumed.failures.len();
    let max_rerun = chaos.failures.len() + 1;
    if resumed_cells > max_rerun {
        violations.push(format!(
            "resume re-ran {resumed_cells} cells; only the {} failed cells plus the torn-off \
             entry should re-run",
            chaos.failures.len()
        ));
    }
    let grid_after = std::fs::read(&resumed.grid_csv)
        .map_err(|e| SimError::io("read grid csv", &resumed.grid_csv, e))?;
    let summary_after = std::fs::read(&resumed.summary_csv)
        .map_err(|e| SimError::io("read summary csv", &resumed.summary_csv, e))?;
    if grid_after != grid_before {
        violations.push("grid.csv changed across the crash-recovery resume".into());
    }
    if summary_after != summary_before {
        violations.push("summary.csv changed across the crash-recovery resume".into());
    }

    Ok(SoakReport {
        total_cells: chaos_campaign.total_cells(),
        chaos_failures: chaos.failures.len(),
        fault_plan: faults
            .iter()
            .map(|f| {
                (
                    chaos_campaign.specs[f.spec_index].label.clone(),
                    f.fault.kind_str().to_string(),
                    f.fault.at_access(),
                )
            })
            .collect(),
        identical_rows,
        torn_tail_detected: resumed.recovery.torn_tail,
        resumed_cells,
        violations,
    })
}
