//! The content-addressed result cache: one JSON line per completed
//! cell in `results/ledger.jsonl`.
//!
//! Line format (hand-rolled via [`ziv_common::json`] — exact `u64`
//! round-trip, no dependencies):
//!
//! ```json
//! {"digest":"89ab...cdef","label":"I-LRU 256KB","workload":"homo-circset",
//!  "cores":[{"app":"circset","instructions":1,"cycles":2}],"metrics":{...}}
//! ```
//!
//! The file is append-only: a run killed mid-write leaves at most one
//! truncated final line, which [`Ledger::load`] skips (and counts), so
//! an interrupted campaign always resumes from its last *completed*
//! cell. Appends flush **and fsync** per line for exactly that reason:
//! once an append returns, the entry survives a kill -9 and a power
//! cut. [`Ledger::recover`] goes one step further than `load`: it
//! detects a torn tail (or any damaged line), drops exactly the
//! damaged bytes, and rewrites the file atomically (temp file, fsync,
//! then rename via [`ziv_common::fsutil::atomic_write`]) so later
//! appends cannot glue onto a dangling fragment and every later load
//! is clean.

use crate::campaign::CellDigest;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Mutex;
use ziv_common::json::{self, JsonValue};
use ziv_common::SimError;
use ziv_core::Metrics;
use ziv_sim::{CoreRunStats, RunResult};
use ziv_workloads::apps;

/// Maps an application name from a ledger line back to the `'static`
/// string [`CoreRunStats`] carries. Known generator names resolve to
/// their existing statics; unknown ones (e.g. a renamed app in an old
/// ledger) are interned once per process.
fn intern_app_name(name: &str) -> &'static str {
    if let Some(a) = apps::app_by_name(name) {
        return a.name;
    }
    const MT_NAMES: [&str; 5] = ["canneal", "facesim", "vips", "applu", "tpce"];
    if let Some(&s) = MT_NAMES.iter().find(|&&s| s == name) {
        return s;
    }
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut table = INTERNED.lock().unwrap();
    if let Some(&s) = table.iter().find(|&&s| s == name) {
        return s;
    }
    let s: &'static str = Box::leak(name.to_string().into_boxed_str());
    table.push(s);
    s
}

fn result_to_json(digest: CellDigest, r: &RunResult, attempts: u32) -> JsonValue {
    let cores = r
        .cores
        .iter()
        .map(|c| {
            JsonValue::Obj(vec![
                ("app".to_string(), JsonValue::str(c.app_name)),
                ("instructions".to_string(), JsonValue::u64(c.instructions)),
                ("cycles".to_string(), JsonValue::u64(c.cycles)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("digest".to_string(), JsonValue::str(digest.hex())),
        ("label".to_string(), JsonValue::str(&r.label)),
        ("workload".to_string(), JsonValue::str(&r.workload)),
    ];
    // First-attempt successes omit the field so clean-run ledgers stay
    // byte-identical with and without a retry policy armed.
    if attempts > 1 {
        fields.push(("attempts".to_string(), JsonValue::u64(u64::from(attempts))));
    }
    fields.push(("cores".to_string(), JsonValue::Arr(cores)));
    fields.push(("metrics".to_string(), r.metrics.to_json()));
    JsonValue::Obj(fields)
}

fn result_from_json(v: &JsonValue) -> Result<(CellDigest, RunResult), String> {
    let digest = v
        .get("digest")
        .and_then(JsonValue::as_str)
        .and_then(CellDigest::from_hex)
        .ok_or("missing or malformed 'digest'")?;
    let label = v
        .get("label")
        .and_then(JsonValue::as_str)
        .ok_or("missing 'label'")?;
    let workload = v
        .get("workload")
        .and_then(JsonValue::as_str)
        .ok_or("missing 'workload'")?;
    let cores = v
        .get("cores")
        .and_then(JsonValue::as_array)
        .ok_or("missing 'cores'")?
        .iter()
        .map(|c| {
            Ok(CoreRunStats {
                instructions: c
                    .get("instructions")
                    .and_then(JsonValue::as_u64)
                    .ok_or("core missing 'instructions'")?,
                cycles: c
                    .get("cycles")
                    .and_then(JsonValue::as_u64)
                    .ok_or("core missing 'cycles'")?,
                app_name: intern_app_name(
                    c.get("app")
                        .and_then(JsonValue::as_str)
                        .ok_or("core missing 'app'")?,
                ),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let metrics = Metrics::from_json(v.get("metrics").ok_or("missing 'metrics'")?)?;
    Ok((
        digest,
        RunResult {
            label: label.to_string(),
            workload: workload.to_string(),
            cores,
            metrics,
        },
    ))
}

/// A failed cell as recorded in the ledger: the error's machine tag,
/// its rendered message, and — for audit violations and watchdog trips
/// — the access index at which it was detected.
///
/// A failure entry deliberately does **not** satisfy
/// [`Ledger::get`], so a `--resume` pass retries the cell; it exists so
/// an interrupted campaign's post-mortem (`ledger.jsonl`) shows *why*
/// a cell has no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCell {
    /// Spec label at the time of failure.
    pub label: String,
    /// Workload name at the time of failure.
    pub workload: String,
    /// [`SimError::kind_tag`] of the error.
    pub kind: String,
    /// Rendered error message.
    pub message: String,
    /// Access index of detection, when the failure is tied to one.
    pub access_index: Option<u64>,
    /// How many attempts the supervisor made before giving up (1 when
    /// no retry policy was armed — the field is omitted from the JSON
    /// in that case).
    pub attempts: u32,
}

fn error_to_json(
    digest: CellDigest,
    label: &str,
    workload: &str,
    error: &SimError,
    attempts: u32,
) -> JsonValue {
    let mut err_fields = vec![
        ("kind".to_string(), JsonValue::str(error.kind_tag())),
        ("message".to_string(), JsonValue::str(error.to_string())),
    ];
    if let Some(idx) = error.access_index() {
        err_fields.push(("access_index".to_string(), JsonValue::u64(idx)));
    }
    if attempts > 1 {
        err_fields.push(("attempts".to_string(), JsonValue::u64(u64::from(attempts))));
    }
    JsonValue::Obj(vec![
        ("digest".to_string(), JsonValue::str(digest.hex())),
        ("label".to_string(), JsonValue::str(label)),
        ("workload".to_string(), JsonValue::str(workload)),
        ("error".to_string(), JsonValue::Obj(err_fields)),
    ])
}

fn error_from_json(v: &JsonValue) -> Result<(CellDigest, FailedCell), String> {
    let digest = v
        .get("digest")
        .and_then(JsonValue::as_str)
        .and_then(CellDigest::from_hex)
        .ok_or("missing or malformed 'digest'")?;
    let err = v.get("error").ok_or("missing 'error'")?;
    Ok((
        digest,
        FailedCell {
            label: v
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            workload: v
                .get("workload")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            kind: err
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or("error missing 'kind'")?
                .to_string(),
            message: err
                .get("message")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            access_index: err.get("access_index").and_then(JsonValue::as_u64),
            attempts: err
                .get("attempts")
                .and_then(JsonValue::as_u64)
                .map_or(1, |a| a.min(u64::from(u32::MAX)) as u32),
        },
    ))
}

/// The in-memory view of a ledger file: every completed cell, keyed by
/// its content digest, plus the still-failed cells (see [`FailedCell`]).
#[derive(Debug, Default)]
pub struct Ledger {
    entries: HashMap<CellDigest, RunResult>,
    failures: HashMap<CellDigest, FailedCell>,
    skipped: usize,
}

impl Ledger {
    /// Loads a ledger file. A missing file is an empty ledger.
    /// Unparseable lines — a truncated final line from an interrupted
    /// run, hand-edited damage, even garbage bytes that are not valid
    /// UTF-8 — are skipped and counted in
    /// [`skipped_lines`](Ledger::skipped_lines) rather than failing
    /// the load; on duplicate digests the last line wins, including
    /// across result and error lines (a success supersedes an earlier
    /// failure and vice versa).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found".
    pub fn load(path: &Path) -> std::io::Result<Ledger> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Ledger::default()),
            Err(e) => return Err(e),
        };
        let mut ledger = Ledger::default();
        let mut reader = BufReader::new(file);
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if reader.read_until(b'\n', &mut buf)? == 0 {
                break;
            }
            if !ledger.ingest_raw_line(&buf) {
                ledger.skipped += 1;
            }
        }
        Ok(ledger)
    }

    /// Parses one raw ledger line into the in-memory maps. Returns
    /// `false` when the line is damaged (invalid UTF-8, unparseable
    /// JSON, or a well-formed object missing required fields); blank
    /// lines are valid no-ops.
    fn ingest_raw_line(&mut self, raw: &[u8]) -> bool {
        // A crashed writer can leave arbitrary bytes, not just a
        // truncated JSON prefix — tolerate invalid UTF-8 too.
        let Ok(line) = std::str::from_utf8(raw) else {
            return false;
        };
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        let Ok(v) = json::parse(line) else {
            return false;
        };
        if v.get("error").is_some() {
            match error_from_json(&v) {
                Ok((digest, failed)) => {
                    self.entries.remove(&digest);
                    self.failures.insert(digest, failed);
                    true
                }
                Err(_) => false,
            }
        } else {
            match result_from_json(&v) {
                Ok((digest, result)) => {
                    self.failures.remove(&digest);
                    self.entries.insert(digest, result);
                    true
                }
                Err(_) => false,
            }
        }
    }

    /// Loads a ledger file like [`Ledger::load`], then — when any line
    /// was damaged or the file ends mid-record — rewrites it atomically
    /// with only the intact lines, byte-for-byte verbatim. After a
    /// recovery the file loads clean: the dropped cells simply have no
    /// entry, so a `--resume` pass re-runs exactly them.
    ///
    /// A clean file is left untouched (no rewrite, no mtime churn), so
    /// resumed campaigns stay byte-identical to uninterrupted ones.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] when the file cannot be read or the
    /// repaired file cannot be written. A failed rewrite never damages
    /// the original (the write is temp + rename).
    pub fn recover(path: &Path) -> Result<(Ledger, LedgerRecovery), SimError> {
        let raw = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Ledger::default(), LedgerRecovery::default()))
            }
            Err(e) => return Err(SimError::io("read ledger", path, e)),
        };
        let mut ledger = Ledger::default();
        let mut report = LedgerRecovery::default();
        let mut intact: Vec<&[u8]> = Vec::new();
        let mut rest: &[u8] = &raw;
        while !rest.is_empty() {
            let (line, tail, terminated) = match rest.iter().position(|&b| b == b'\n') {
                Some(nl) => (&rest[..=nl], &rest[nl + 1..], true),
                None => (rest, &[][..], false),
            };
            rest = tail;
            let ok = ledger.ingest_raw_line(line);
            if ok && !terminated {
                // A parseable line without its newline is still a torn
                // tail: the writer died between the payload and the
                // terminator. Keep the data, repair the framing.
                report.torn_tail = true;
            }
            if ok {
                intact.push(line);
            } else {
                ledger.skipped += 1;
                report.dropped_lines += 1;
                if terminated {
                    report.dropped_bytes += line.len() as u64;
                } else {
                    report.torn_tail = true;
                    report.dropped_bytes += line.len() as u64;
                }
            }
        }
        if report.dropped_lines > 0 || report.torn_tail {
            let mut repaired = Vec::with_capacity(raw.len());
            for line in &intact {
                repaired.extend_from_slice(line);
                if repaired.last() != Some(&b'\n') {
                    repaired.push(b'\n');
                }
            }
            ziv_common::fsutil::atomic_write(path, &repaired)?;
            report.repaired = true;
        }
        Ok((ledger, report))
    }

    /// The cached result for a cell digest, if present.
    pub fn get(&self, digest: CellDigest) -> Option<&RunResult> {
        self.entries.get(&digest)
    }

    /// Whether the ledger holds a result for `digest`.
    pub fn contains(&self, digest: CellDigest) -> bool {
        self.entries.contains_key(&digest)
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of lines skipped as unparseable during the load.
    pub fn skipped_lines(&self) -> usize {
        self.skipped
    }

    /// The recorded failure for a cell digest, if its most recent
    /// ledger line is an error entry.
    pub fn failure(&self, digest: CellDigest) -> Option<&FailedCell> {
        self.failures.get(&digest)
    }

    /// Number of cells whose most recent ledger line is a failure.
    pub fn failed_count(&self) -> usize {
        self.failures.len()
    }
}

/// What [`Ledger::recover`] found and did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LedgerRecovery {
    /// Damaged lines dropped (torn tails, garbage, half-records).
    pub dropped_lines: usize,
    /// Total bytes of damage dropped.
    pub dropped_bytes: u64,
    /// Whether the file ended mid-record (the kill -9 footprint).
    pub torn_tail: bool,
    /// Whether the file was rewritten. `false` means it was already
    /// clean and was left untouched.
    pub repaired: bool,
}

impl LedgerRecovery {
    /// Whether anything was wrong with the file.
    pub fn was_damaged(&self) -> bool {
        self.dropped_lines > 0 || self.torn_tail
    }
}

/// Append handle for a ledger file, safe to share across worker
/// threads (each append is one locked write + flush + fsync, so lines
/// never interleave, a kill loses at most the in-flight line, and
/// every completed append survives a power cut).
#[derive(Debug)]
pub struct LedgerWriter {
    file: Mutex<File>,
}

impl LedgerWriter {
    /// Opens `path` for appending, creating it if needed. If the file
    /// ends in a truncated partial line (the footprint of a run killed
    /// mid-append), a newline is written first so the next entry is
    /// not glued onto — and corrupted by — the dangling fragment.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and inspection errors.
    pub fn append_to(path: &Path) -> std::io::Result<LedgerWriter> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        if file.metadata()?.len() > 0 {
            // In append mode the seek only positions the *read* cursor;
            // writes still go to the end.
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last != [b'\n'] {
                file.write_all(b"\n")?;
            }
        }
        Ok(LedgerWriter {
            file: Mutex::new(file),
        })
    }

    /// Appends one completed cell, flushes, and fsyncs.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    ///
    /// # Panics
    ///
    /// Panics if another thread poisoned the writer lock.
    pub fn append(&self, digest: CellDigest, result: &RunResult) -> std::io::Result<()> {
        self.append_attempted(digest, result, 1)
    }

    /// [`LedgerWriter::append`] recording the supervisor's attempt
    /// count. First-attempt successes (`attempts == 1`) serialize
    /// byte-identically to [`LedgerWriter::append`].
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    ///
    /// # Panics
    ///
    /// Panics if another thread poisoned the writer lock.
    pub fn append_attempted(
        &self,
        digest: CellDigest,
        result: &RunResult,
        attempts: u32,
    ) -> std::io::Result<()> {
        let line = result_to_json(digest, result, attempts).to_string();
        self.write_line(&line)
    }

    /// Appends one failed cell as an error entry (with the supervisor's
    /// attempt count), flushes, and fsyncs. The entry never satisfies
    /// [`Ledger::get`], so a later `--resume` retries exactly this
    /// cell; a subsequent successful append for the same digest
    /// supersedes it.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    ///
    /// # Panics
    ///
    /// Panics if another thread poisoned the writer lock.
    pub fn append_error(
        &self,
        digest: CellDigest,
        label: &str,
        workload: &str,
        error: &SimError,
        attempts: u32,
    ) -> std::io::Result<()> {
        let line = error_to_json(digest, label, workload, error, attempts).to_string();
        self.write_line(&line)
    }

    /// One locked write + flush + fsync: after this returns, the line
    /// is durably on disk — the write-ahead guarantee `--resume`
    /// depends on after a kill -9.
    fn write_line(&self, line: &str) -> std::io::Result<()> {
        let mut f = self.file.lock().unwrap();
        writeln!(f, "{line}")?;
        f.flush()?;
        f.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::config::SystemConfig;
    use ziv_sim::{run_one, RunSpec};
    use ziv_workloads::{Recipe, ScaleParams};

    fn sample_result() -> RunResult {
        let sys = SystemConfig::scaled();
        let recipe = Recipe::homogeneous(
            apps::app_by_name("circset").unwrap(),
            2,
            1_000,
            7,
            ScaleParams::from_system(&sys),
        );
        run_one(&RunSpec::new("I-LRU 256KB", sys), &recipe.build())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ziv-harness-ledger-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn round_trip_equals_in_memory_result() {
        let r = sample_result();
        let d = CellDigest(0xfeed_beef_dead_cafe);
        let path = tmp("round-trip");
        std::fs::remove_file(&path).ok();
        LedgerWriter::append_to(&path)
            .unwrap()
            .append(d, &r)
            .unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.skipped_lines(), 0);
        // Every field — per-core stats, every Metrics counter, the
        // relocation histogram, the f64 energy — survives exactly.
        assert_eq!(ledger.get(d), Some(&r));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_final_line_is_skipped_not_fatal() {
        let r = sample_result();
        let d = CellDigest(1);
        let path = tmp("truncated");
        std::fs::remove_file(&path).ok();
        LedgerWriter::append_to(&path)
            .unwrap()
            .append(d, &r)
            .unwrap();
        // Simulate a kill mid-append: half a second line.
        let mut raw = std::fs::read_to_string(&path).unwrap();
        let half = raw[..raw.len() / 2].to_string();
        raw.push_str(&half);
        std::fs::write(&path, raw).unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.skipped_lines(), 1);
        assert_eq!(ledger.get(d), Some(&r));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_ledger() {
        let ledger = Ledger::load(Path::new("/nonexistent/ziv/ledger.jsonl")).unwrap();
        assert!(ledger.is_empty());
        assert!(!ledger.contains(CellDigest(1)));
    }

    #[test]
    fn appends_accumulate_and_last_duplicate_wins() {
        let mut a = sample_result();
        let path = tmp("dups");
        std::fs::remove_file(&path).ok();
        let w = LedgerWriter::append_to(&path).unwrap();
        w.append(CellDigest(1), &a).unwrap();
        a.label = "relabeled".into();
        w.append(CellDigest(1), &a).unwrap();
        w.append(CellDigest(2), &a).unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.get(CellDigest(1)).unwrap().label, "relabeled");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_truncated_line_starts_a_fresh_line() {
        let r = sample_result();
        let path = tmp("glue");
        std::fs::remove_file(&path).ok();
        std::fs::write(&path, "{\"digest\":\"0000").unwrap(); // killed mid-write
        LedgerWriter::append_to(&path)
            .unwrap()
            .append(CellDigest(3), &r)
            .unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.skipped_lines(), 1, "the fragment stays isolated");
        assert_eq!(ledger.get(CellDigest(3)), Some(&r));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_utf8_garbage_lines_are_skipped_not_fatal() {
        let r = sample_result();
        let path = tmp("garbage");
        std::fs::remove_file(&path).ok();
        let w = LedgerWriter::append_to(&path).unwrap();
        w.append(CellDigest(1), &r).unwrap();
        // A crashed writer (or disk corruption) left raw bytes that are
        // not valid UTF-8 on their own line, then the campaign went on.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0xff, 0xfe, 0x80, b'{', 0xc0, b'\n']);
        std::fs::write(&path, raw).unwrap();
        let w = LedgerWriter::append_to(&path).unwrap();
        w.append(CellDigest(2), &r).unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.skipped_lines(), 1);
        assert_eq!(ledger.get(CellDigest(1)), Some(&r));
        assert_eq!(ledger.get(CellDigest(2)), Some(&r));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_entries_round_trip_and_do_not_satisfy_get() {
        use ziv_common::{AuditViolation, ViolationKind};
        let path = tmp("errors");
        std::fs::remove_file(&path).ok();
        let w = LedgerWriter::append_to(&path).unwrap();
        let e = SimError::from(AuditViolation {
            kind: ViolationKind::InclusionHole,
            access_index: 41,
            line: None,
            detail: "no LLC copy".into(),
        });
        w.append_error(CellDigest(9), "Z-LRU", "homo-circset", &e, 1)
            .unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.len(), 0, "a failure is not a cached result");
        assert!(ledger.get(CellDigest(9)).is_none(), "resume must retry it");
        assert_eq!(ledger.failed_count(), 1);
        let f = ledger.failure(CellDigest(9)).unwrap();
        assert_eq!(f.kind, "audit");
        assert_eq!(f.access_index, Some(41));
        assert_eq!(f.label, "Z-LRU");
        assert!(f.message.contains("inclusion-hole"), "{}", f.message);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn later_success_supersedes_failure_and_vice_versa() {
        let r = sample_result();
        let path = tmp("supersede");
        std::fs::remove_file(&path).ok();
        let w = LedgerWriter::append_to(&path).unwrap();
        let e = SimError::Config("boom".into());
        w.append_error(CellDigest(5), "L", "w", &e, 1).unwrap();
        w.append(CellDigest(5), &r).unwrap(); // retried and succeeded
        w.append(CellDigest(6), &r).unwrap();
        w.append_error(CellDigest(6), "L", "w", &e, 1).unwrap(); // regressed
        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.get(CellDigest(5)), Some(&r));
        assert!(ledger.failure(CellDigest(5)).is_none());
        assert!(ledger.get(CellDigest(6)).is_none());
        assert!(ledger.failure(CellDigest(6)).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn app_names_intern_to_statics() {
        assert_eq!(intern_app_name("circset"), "circset");
        assert_eq!(intern_app_name("canneal"), "canneal");
        let a = intern_app_name("some-retired-app");
        let b = intern_app_name("some-retired-app");
        assert!(std::ptr::eq(a, b), "unknown names intern once");
    }
}
