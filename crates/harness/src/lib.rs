//! # ziv-harness
//!
//! The experiment-campaign subsystem: resumable, cached, observable
//! execution of the paper's figure-style sweeps.
//!
//! Every paper figure is a sweep over `(mode × policy × L2 size) ×
//! workload` cells. This crate turns such a sweep into a **campaign**
//! — data, not code — and runs it through a **content-addressed result
//! cache** so that:
//!
//! - re-running a campaign skips every already-computed cell;
//! - an interrupted campaign resumes where it stopped (`--resume`);
//! - different campaigns sharing cells share each other's results.
//!
//! The pieces:
//!
//! - [`Campaign`]: a named `(spec list × workload-recipe list)` grid,
//!   reproducible from `(seed, effort, system config)`. Built-in
//!   figure campaigns live in [`campaigns`].
//! - [`Ledger`]: the persistent cache — one JSON line per completed
//!   cell in `<results-dir>/ledger.jsonl`, keyed by [`CellDigest`]
//!   (a stable FNV-1a digest of the cell's semantic fields; see
//!   `DESIGN.md` for what is and is not digested). Hand-rolled JSON
//!   (`ziv_common::json`) keeps the build dependency-free.
//! - [`run_campaign`]: the runner — partitions cells into cached and
//!   missing, executes the missing ones on the supervised worker pool
//!   ([`run_cells_supervised`]: watchdog-cancelled hangs, contained
//!   panics, deterministic retry of transient failures),
//!   appends each finished cell to the ledger as it completes, and
//!   exports `grid.csv` / `summary.csv` assembled from cached + fresh
//!   results. The final CSVs are byte-identical whether the campaign
//!   ran in one pass or across any number of interruptions, at any
//!   thread count.
//! - [`ProgressSink`] / [`Telemetry`]: the observability layer —
//!   per-cell wall-clock timing, a live progress line, and a
//!   worker-utilization summary.
//! - [`CampaignBus`]: the live telemetry bus — a seqlock shared-memory
//!   segment (`results/<name>/telemetry.shm`) that `zivsim watch`
//!   tails while the campaign runs, plus `--progress jsonl` heartbeat
//!   lines for CI log scraping. Off by default and provably zero-cost
//!   when off.
//! - [`FailureRecord`] / [`replay`]: the robustness layer — a failing
//!   cell (invariant-audit violation, watchdog trip) is isolated,
//!   recorded as a ledger error entry that `--resume` retries, and
//!   dumped as a minimized repro record that `zivsim replay`
//!   re-executes deterministically.
//!
//! # Examples
//!
//! ```
//! use ziv_harness::{campaigns, run_campaign, CampaignParams, NullSink, RunnerConfig};
//!
//! let mut params = CampaignParams::tiny(); // doc-test sizes
//! params.seed = 7;
//! let campaign = campaigns::by_name("smoke", &params).unwrap();
//! let dir = std::env::temp_dir().join("ziv-harness-doc");
//! let cfg = RunnerConfig { threads: 2, ..RunnerConfig::new(dir.clone()) };
//! let first = run_campaign(&campaign, &cfg, &NullSink).unwrap();
//! assert_eq!(first.telemetry.executed_cells, first.telemetry.total_cells);
//! assert!(first.failures.is_empty());
//!
//! // Immediately resuming recomputes nothing and exports identical CSVs.
//! let cfg = RunnerConfig { resume: true, ..cfg };
//! let again = run_campaign(&campaign, &cfg, &NullSink).unwrap();
//! assert_eq!(again.telemetry.executed_cells, 0);
//! # std::fs::remove_dir_all(dir).ok();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bus;
mod campaign;
mod failure;
mod ledger;
mod runner;
mod soak;
mod supervise;
mod telemetry;

pub use bus::{BusOptions, CampaignBus, WorkerProbe};
pub use campaign::{campaigns, Campaign, CampaignParams, CellDigest, CELL_SCHEMA_VERSION};
pub use failure::{replay, FailureRecord, ReplayReport, FAILURE_SCHEMA_VERSION};
pub use ledger::{FailedCell, Ledger, LedgerRecovery, LedgerWriter};
pub use runner::{
    run_campaign, run_campaign_sampled, CampaignOutcome, CellFailure, RunnerConfig,
    SampledCampaignOutcome, SampledCellResult, SampledValidation,
};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use supervise::{
    default_stall_window, execute_with_retry, oversubscription_factor, run_cells_supervised,
    run_cells_supervised_probed, run_one_guarded, NoopSuperviseObserver, SuperviseConfig,
    SuperviseObserver, SupervisedRun,
};
pub use telemetry::{CellTiming, EtaEstimator, NullSink, ProgressSink, StderrProgress, Telemetry};
