//! The campaign side of the live telemetry bus.
//!
//! [`CampaignBus`] owns the shared-memory [`TelemetryWriter`] for one
//! campaign and the single **ticker thread** that publishes the
//! heartbeat and campaign records (and, with `--progress jsonl`, one
//! structured heartbeat line per tick to stderr). Worker threads never
//! touch those records: each gets its own [`WorkerProbe`] — the
//! [`TelemetryProbe`] implementation handed through
//! `run_cells_supervised` into the sim driver — that writes only its
//! own worker record, preserving the seqlock single-writer-per-record
//! discipline end to end.
//!
//! The bus is pure observability: it writes only `telemetry.shm` (and
//! stderr), reads nothing back into the campaign, and is skipped
//! entirely — `CampaignBus::start` returns `None` — when both
//! telemetry and JSONL progress are off, so unwatched campaigns carry
//! zero extra threads, allocations, or syscalls.

use crate::telemetry::EtaEstimator;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ziv_common::json::JsonValue;
use ziv_common::SimError;
use ziv_core::observe::{ProbeSnapshot, SamplingProgress, TelemetryProbe};
use ziv_telemetry::{CampaignCounters, TelemetryWriter, WorkerRecord};

/// What the bus should publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusOptions {
    /// Map and write the `telemetry.shm` segment.
    pub telemetry: bool,
    /// Emit one JSONL heartbeat line per tick to stderr.
    pub progress_jsonl: bool,
    /// Ticker cadence.
    pub tick: Duration,
}

impl Default for BusOptions {
    fn default() -> Self {
        BusOptions {
            telemetry: false,
            progress_jsonl: false,
            tick: Duration::from_millis(200),
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    done: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    running: AtomicU64,
}

#[derive(Debug)]
struct Shared {
    total: u64,
    cached: u64,
    counters: Counters,
    eta: Mutex<EtaEstimator>,
    stop: AtomicBool,
    started: Instant,
}

impl Shared {
    fn snapshot(&self) -> CampaignCounters {
        let done = self.counters.done.load(Ordering::Relaxed);
        let failed = self.counters.failed.load(Ordering::Relaxed);
        let remaining = self.total.saturating_sub(done + failed) as usize;
        let eta_ms = self
            .eta
            .lock()
            .expect("eta estimator poisoned")
            .eta(self.started.elapsed(), remaining)
            .map(|d| d.as_millis() as u64);
        CampaignCounters {
            total: self.total,
            cached: self.cached,
            done,
            failed,
            retried: self.counters.retried.load(Ordering::Relaxed),
            running: self.counters.running.load(Ordering::Relaxed),
            eta_ms,
        }
    }
}

fn jsonl_line(tick: u64, elapsed_ms: u64, finished: bool, c: &CampaignCounters) -> String {
    JsonValue::Obj(vec![
        ("type".into(), JsonValue::str("progress")),
        ("tick".into(), JsonValue::u64(tick)),
        ("elapsed_ms".into(), JsonValue::u64(elapsed_ms)),
        ("finished".into(), JsonValue::Bool(finished)),
        ("done".into(), JsonValue::u64(c.done)),
        ("total".into(), JsonValue::u64(c.total)),
        ("cached".into(), JsonValue::u64(c.cached)),
        ("failed".into(), JsonValue::u64(c.failed)),
        ("retried".into(), JsonValue::u64(c.retried)),
        ("running".into(), JsonValue::u64(c.running)),
        (
            "eta_ms".into(),
            c.eta_ms.map_or(JsonValue::Null, JsonValue::u64),
        ),
    ])
    .to_string()
}

/// Live telemetry publisher for one campaign (or soak pass, or paired
/// sampling session). See the module docs for the threading model.
#[derive(Debug)]
pub struct CampaignBus {
    writer: Option<Arc<TelemetryWriter>>,
    shared: Arc<Shared>,
    ticker: Option<std::thread::JoinHandle<()>>,
    n_workers: usize,
}

impl CampaignBus {
    /// Start the bus: create the segment (when telemetry is on) and the
    /// ticker thread. Returns `Ok(None)` when both outputs are off —
    /// the zero-cost path.
    pub fn start(
        results_dir: &std::path::Path,
        n_workers: usize,
        total: usize,
        cached: usize,
        opts: &BusOptions,
    ) -> Result<Option<CampaignBus>, SimError> {
        if !opts.telemetry && !opts.progress_jsonl {
            return Ok(None);
        }
        let n_workers = n_workers.max(1);
        let shared = Arc::new(Shared {
            total: total as u64,
            cached: cached as u64,
            counters: Counters {
                done: AtomicU64::new(cached as u64),
                ..Counters::default()
            },
            eta: Mutex::new(EtaEstimator::new(EtaEstimator::DEFAULT_WINDOW)),
            stop: AtomicBool::new(false),
            started: Instant::now(),
        });
        let writer = if opts.telemetry {
            // Publish the initial records before the segment becomes
            // visible: a watcher that wins the race to open it must read
            // the real grid size, never zero-filled placeholders.
            let initial = shared.snapshot();
            Some(Arc::new(TelemetryWriter::create_with(
                results_dir,
                n_workers,
                |w| {
                    w.publish_heartbeat(0, false, 0);
                    w.publish_campaign(&initial);
                },
            )?))
        } else {
            None
        };
        let ticker = {
            let writer = writer.clone();
            let shared = Arc::clone(&shared);
            let tick_len = opts.tick.max(Duration::from_millis(10));
            let jsonl = opts.progress_jsonl;
            std::thread::Builder::new()
                .name("ziv-telemetry-ticker".into())
                .spawn(move || {
                    let mut tick = 0u64;
                    loop {
                        tick += 1;
                        let c = shared.snapshot();
                        let elapsed_ms = shared.started.elapsed().as_millis() as u64;
                        if let Some(w) = writer.as_deref() {
                            w.publish_heartbeat(tick, false, elapsed_ms);
                            w.publish_campaign(&c);
                        }
                        if jsonl {
                            eprintln!("{}", jsonl_line(tick, elapsed_ms, false, &c));
                        }
                        if shared.stop.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(tick_len);
                    }
                })
                .map_err(|e| SimError::Internal(format!("spawn telemetry ticker: {e}")))?
        };
        Ok(Some(CampaignBus {
            writer,
            shared,
            ticker: Some(ticker),
            n_workers,
        }))
    }

    /// Per-worker probes to hand to `run_cells_supervised`, one per
    /// worker slot. `None` when the segment is off (JSONL-only bus).
    pub fn worker_probes(&self) -> Option<Vec<Box<dyn TelemetryProbe>>> {
        let writer = self.writer.as_ref()?;
        Some(
            (0..self.n_workers)
                .map(|i| Box::new(WorkerProbe::new(writer.worker(i))) as Box<dyn TelemetryProbe>)
                .collect(),
        )
    }

    /// One probe (worker slot 0) for single-threaded drivers — sampled
    /// campaigns and paired sampling sessions.
    pub fn solo_probe(&self) -> Option<WorkerProbe> {
        self.writer.as_ref().map(|w| WorkerProbe::new(w.worker(0)))
    }

    /// A cell started executing on some worker.
    pub fn cell_started(&self) {
        self.shared.counters.running.fetch_add(1, Ordering::Relaxed);
    }

    /// A cell finished successfully after `attempts` attempts.
    pub fn cell_finished(&self, attempts: u32) {
        self.settle(attempts, &self.shared.counters.done);
    }

    /// A cell failed permanently after `attempts` attempts.
    pub fn cell_failed(&self, attempts: u32) {
        self.settle(attempts, &self.shared.counters.failed);
    }

    fn settle(&self, attempts: u32, bucket: &AtomicU64) {
        let c = &self.shared.counters;
        c.running.fetch_sub(1, Ordering::Relaxed);
        bucket.fetch_add(1, Ordering::Relaxed);
        c.retried
            .fetch_add(attempts.saturating_sub(1) as u64, Ordering::Relaxed);
        self.shared
            .eta
            .lock()
            .expect("eta estimator poisoned")
            .record(self.shared.started.elapsed());
    }

    fn stop_ticker(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
    }

    /// Stop the ticker and publish the final (finished) state. Call
    /// after all result artifacts are written; readers treat the
    /// finished flag as "safe to stop polling, exit clean".
    pub fn finish(mut self) {
        self.stop_ticker();
        let c = self.shared.snapshot();
        let elapsed_ms = self.shared.started.elapsed().as_millis() as u64;
        // The final tick is one past whatever the ticker reached; its
        // exact value is irrelevant to readers (they key on the flag).
        if let Some(w) = self.writer.as_deref() {
            w.publish_campaign(&c);
            w.publish_heartbeat(u64::MAX, true, elapsed_ms);
        }
    }

    /// Whether the shared-memory segment is being written (as opposed
    /// to a JSONL-only bus).
    pub fn segment_on(&self) -> bool {
        self.writer.is_some()
    }
}

impl Drop for CampaignBus {
    fn drop(&mut self) {
        // `finish` consumes self; reaching Drop with a live ticker means
        // the campaign errored out — stop the thread, leave the segment
        // unfinished (readers see a dead writer, which is the truth).
        self.stop_ticker();
    }
}

/// Per-worker [`TelemetryProbe`] over one worker record of the segment.
///
/// Owned by exactly one worker thread at a time (the seqlock
/// single-writer contract); `Sync` because the record words are
/// atomics, not because concurrent use is intended.
#[derive(Debug)]
pub struct WorkerProbe {
    record: WorkerRecord,
}

impl WorkerProbe {
    fn new(record: WorkerRecord) -> Self {
        WorkerProbe { record }
    }
}

impl TelemetryProbe for WorkerProbe {
    fn cell_begin(
        &self,
        spec_index: u64,
        workload_index: u64,
        attempt: u64,
        expected_accesses: u64,
        label: &str,
        workload: &str,
    ) {
        self.record.begin_cell(
            spec_index,
            workload_index,
            attempt,
            expected_accesses,
            label,
            workload,
        );
    }

    fn publish_progress(&self, snap: &ProbeSnapshot) {
        self.record.publish_progress(
            snap.access_index,
            snap.instructions,
            snap.cycles,
            snap.llc_accesses,
            snap.llc_misses,
            snap.inclusion_victims,
            snap.relocations,
            snap.stratum,
        );
    }

    fn publish_sampling(&self, progress: &SamplingProgress) {
        self.record.publish_sampling(
            progress.intervals,
            progress.ipc_mean,
            progress.ipc_half_width,
        );
    }

    fn cell_end(&self) {
        self.record.end_cell();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_telemetry::TelemetryReader;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ziv-bus-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn off_bus_is_none() {
        let opts = BusOptions::default();
        let bus = CampaignBus::start(std::path::Path::new("/nonexistent"), 2, 4, 0, &opts).unwrap();
        assert!(bus.is_none(), "bus must not start when everything is off");
    }

    #[test]
    fn bus_publishes_counters_and_finished_flag() {
        let dir = tmpdir("counters");
        let opts = BusOptions {
            telemetry: true,
            tick: Duration::from_millis(20),
            ..BusOptions::default()
        };
        let bus = CampaignBus::start(&dir, 2, 6, 1, &opts).unwrap().unwrap();
        assert!(bus.segment_on());
        let probes = bus.worker_probes().unwrap();
        assert_eq!(probes.len(), 2);
        probes[0].cell_begin(0, 3, 1, 1000, "ZIV", "mix_hot");
        bus.cell_started();
        probes[0].publish_progress(&ProbeSnapshot {
            access_index: 256,
            instructions: 300,
            ..ProbeSnapshot::default()
        });
        probes[0].cell_end();
        bus.cell_finished(2); // one retry

        let reader = TelemetryReader::open(&dir.join(ziv_telemetry::SEGMENT_FILE)).unwrap();
        bus.finish();
        let snap = reader.snapshot().expect("consistent snapshot");
        assert!(snap.heartbeat.finished);
        assert_eq!(snap.campaign.total, 6);
        assert_eq!(snap.campaign.cached, 1);
        assert_eq!(snap.campaign.done, 2); // cached + the finished cell
        assert_eq!(snap.campaign.retried, 1);
        assert_eq!(snap.campaign.running, 0);
        let w = &snap.workers[0];
        assert_eq!(w.label, "ZIV");
        assert_eq!(w.workload, "mix_hot");
        assert_eq!(w.workload_index, 3);
        assert_eq!(w.access_index, 256);
        assert_eq!(w.state, ziv_telemetry::layout::WORKER_DONE);
        assert_eq!(snap.writer_pid, std::process::id() as u64);
        drop(reader);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_line_is_parseable_and_complete() {
        let c = CampaignCounters {
            total: 10,
            cached: 2,
            done: 5,
            failed: 1,
            retried: 3,
            running: 2,
            eta_ms: Some(1234),
        };
        let line = jsonl_line(7, 999, false, &c);
        let v = ziv_common::json::parse(&line).unwrap();
        assert_eq!(v.get("tick").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("done").and_then(JsonValue::as_u64), Some(5));
        assert_eq!(v.get("eta_ms").and_then(JsonValue::as_u64), Some(1234));
        assert_eq!(v.get("finished").and_then(JsonValue::as_bool), Some(false));
        let none = jsonl_line(8, 1000, true, &CampaignCounters::default());
        let v = ziv_common::json::parse(&none).unwrap();
        assert!(matches!(v.get("eta_ms"), Some(JsonValue::Null)));
    }
}
