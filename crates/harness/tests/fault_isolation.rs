//! End-to-end campaign fault isolation: an injected failing cell is
//! recorded (ledger error entry + replayable repro record) while the
//! rest of the campaign completes; `--resume` retries exactly the
//! failed cell; `--strict` stops after the first failure; and the repro
//! record deterministically reproduces the violation under `replay`.

use std::fs;
use std::path::PathBuf;
use ziv_core::{AuditCadence, FaultInjection};
use ziv_harness::{
    campaigns, replay, run_campaign, CampaignParams, FailureRecord, Ledger, NullSink, RunnerConfig,
};

const FAULT_AT: u64 = 200;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ziv-harness-fault-it")
        .join(format!("{name}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn params() -> CampaignParams {
    CampaignParams::tiny()
}

/// The smoke campaign with a deliberate directory corruption armed in
/// cell (0, 0): spec 0's run clears a live sharer bit at `FAULT_AT`.
fn faulted_smoke() -> ziv_harness::Campaign {
    let mut campaign = campaigns::by_name("smoke", &params()).unwrap();
    campaign.specs[0] = campaign.specs[0]
        .clone()
        .with_fault(FaultInjection::CorruptDirectory {
            at_access: FAULT_AT,
        });
    campaign
}

fn audited_cfg(dir: &std::path::Path) -> RunnerConfig {
    RunnerConfig {
        threads: 2,
        audit: AuditCadence::EveryAccess,
        params: Some(params()),
        ..RunnerConfig::new(dir.to_path_buf())
    }
}

#[test]
fn failing_cell_is_isolated_recorded_and_retried_on_resume() {
    let campaign = faulted_smoke();
    let total = campaign.total_cells();
    let dir = temp_dir("isolate");
    let cfg = audited_cfg(&dir);

    let outcome = run_campaign(&campaign, &cfg, &NullSink).unwrap();

    // The faulted spec fails both its cells (the fault arms on every
    // run of spec 0); every other cell still completes.
    assert!(!outcome.failures.is_empty(), "injected fault must surface");
    let failed_cells: Vec<_> = outcome
        .failures
        .iter()
        .map(|f| (f.spec_index, f.workload_index))
        .collect();
    assert!(
        failed_cells.iter().all(|&(s, _)| s == 0),
        "only the faulted spec may fail: {failed_cells:?}"
    );
    assert_eq!(
        outcome.grid.len() + outcome.failures.len(),
        total,
        "failed cells are absent from the grid, not silently dropped"
    );
    assert_eq!(outcome.telemetry.failed_cells, outcome.failures.len());
    assert!(outcome.grid.iter().all(|g| g.spec_index != 0));

    // Each failure left an error entry in the ledger that does NOT
    // satisfy `get` — so resume retries it — plus a repro record.
    let ledger = Ledger::load(&outcome.ledger_path).unwrap();
    assert_eq!(ledger.failed_count(), outcome.failures.len());
    for f in &outcome.failures {
        assert!(ledger.get(f.digest).is_none());
        let entry = ledger.failure(f.digest).unwrap();
        assert_eq!(entry.kind, "audit");
        assert_eq!(entry.access_index, Some(FAULT_AT));
        let record_path = f.record_path.as_ref().expect("repro record written");
        assert!(record_path.exists());
    }

    // Resume with the same (still-faulted) campaign: only the failed
    // cells re-run, and they fail at the same access index again.
    let cfg = RunnerConfig {
        resume: true,
        ..audited_cfg(&dir)
    };
    let again = run_campaign(&campaign, &cfg, &NullSink).unwrap();
    assert_eq!(
        again.telemetry.cached_cells,
        total - failed_cells.len(),
        "resume must reuse every completed cell"
    );
    assert_eq!(again.failures.len(), failed_cells.len());
    for f in &again.failures {
        assert_eq!(f.error.access_index(), Some(FAULT_AT), "deterministic");
    }

    // "Fix the bug" (drop the fault): resume now runs only the cells
    // the healthy spec addresses — the rest stay cached — and the
    // campaign comes back clean.
    let healthy = campaigns::by_name("smoke", &params()).unwrap();
    let cfg = RunnerConfig {
        resume: true,
        ..audited_cfg(&dir)
    };
    let fixed = run_campaign(&healthy, &cfg, &NullSink).unwrap();
    assert!(fixed.failures.is_empty());
    assert_eq!(fixed.grid.len(), total);
    assert_eq!(
        fixed.telemetry.executed_cells,
        failed_cells.len(),
        "only the previously failing cells re-run"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn strict_mode_stops_after_the_first_failure() {
    let campaign = faulted_smoke();
    let dir = temp_dir("strict");
    // Single-threaded so the claim order is deterministic: cell (0, 0)
    // — the faulted spec — is claimed first and fails.
    let cfg = RunnerConfig {
        threads: 1,
        strict: true,
        ..audited_cfg(&dir)
    };
    let outcome = run_campaign(&campaign, &cfg, &NullSink).unwrap();
    assert_eq!(outcome.failures.len(), 1, "fail fast: exactly one failure");
    assert!(
        outcome.grid.len() < campaign.total_cells() - 1,
        "strict must abort the remaining cells"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_record_replays_the_violation_at_the_same_access() {
    let campaign = faulted_smoke();
    let dir = temp_dir("replay");
    let cfg = RunnerConfig {
        threads: 1,
        strict: true,
        ..audited_cfg(&dir)
    };
    let outcome = run_campaign(&campaign, &cfg, &NullSink).unwrap();
    let record_path = outcome.failures[0].record_path.clone().unwrap();

    // Round-trip through disk, then replay in (conceptually) a fresh
    // process: same campaign params, same fault, every-access audit.
    let record = FailureRecord::load(&record_path).unwrap();
    assert_eq!(record.campaign, "smoke");
    assert_eq!(
        record.fault.as_deref_pair(),
        Some(("corrupt-directory", FAULT_AT))
    );
    assert_eq!(
        record.violation.as_ref().map(|(_, idx)| *idx),
        Some(FAULT_AT)
    );

    let report = replay(&record).unwrap();
    assert!(report.reproduced, "replay must reproduce: {}", report.note);
    let err = report.error.unwrap();
    assert_eq!(err.access_index(), Some(FAULT_AT), "same access index");
    assert_eq!(
        err.violation().map(|v| v.kind.as_str()),
        record.violation.as_ref().map(|(k, _)| k.as_str()),
        "same violation kind"
    );
    fs::remove_dir_all(&dir).ok();
}

/// Helper: compare an `Option<(String, u64)>` against `(&str, u64)`.
trait PairExt {
    fn as_deref_pair(&self) -> Option<(&str, u64)>;
}

impl PairExt for Option<(String, u64)> {
    fn as_deref_pair(&self) -> Option<(&str, u64)> {
        self.as_ref().map(|(s, n)| (s.as_str(), *n))
    }
}
