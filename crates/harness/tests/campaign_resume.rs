//! End-to-end campaign cache semantics: resume executes zero new
//! cells, an interrupted campaign completes from its ledger, and the
//! exported CSVs are byte-identical across passes and thread counts.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use ziv_harness::{
    campaigns, run_campaign, CampaignParams, CellTiming, NullSink, ProgressSink, RunnerConfig,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ziv-harness-it")
        .join(format!("{name}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn params() -> CampaignParams {
    CampaignParams::tiny()
}

/// Counts executed cells without printing anything.
#[derive(Default)]
struct CountingSink {
    cells: AtomicUsize,
}

impl ProgressSink for CountingSink {
    fn cell_finished(&self, _timing: &CellTiming, _done: usize, _total: usize) {
        self.cells.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn resume_executes_zero_new_cells_and_reexports_identical_csvs() {
    let campaign = campaigns::by_name("smoke", &params()).unwrap();
    let dir = temp_dir("resume-zero");
    let cfg = RunnerConfig {
        threads: 2,
        ..RunnerConfig::new(dir.clone())
    };

    let first = run_campaign(&campaign, &cfg, &NullSink).unwrap();
    assert_eq!(first.telemetry.executed_cells, campaign.total_cells());
    assert_eq!(first.telemetry.cached_cells, 0);
    assert_eq!(first.grid.len(), campaign.total_cells());
    let grid_csv = fs::read(&first.grid_csv).unwrap();
    let summary_csv = fs::read(&first.summary_csv).unwrap();
    assert!(!grid_csv.is_empty());

    // Second pass with --resume: every cell is served from the ledger.
    let sink = CountingSink::default();
    let cfg = RunnerConfig {
        resume: true,
        ..cfg
    };
    let second = run_campaign(&campaign, &cfg, &sink).unwrap();
    assert_eq!(
        second.telemetry.executed_cells, 0,
        "resume must run nothing"
    );
    assert_eq!(sink.cells.load(Ordering::Relaxed), 0);
    assert_eq!(second.telemetry.cached_cells, campaign.total_cells());
    assert_eq!(fs::read(&second.grid_csv).unwrap(), grid_csv);
    assert_eq!(fs::read(&second.summary_csv).unwrap(), summary_csv);

    // Without --resume the ledger is discarded and everything reruns.
    let cfg = RunnerConfig {
        resume: false,
        ..cfg
    };
    let third = run_campaign(&campaign, &cfg, &NullSink).unwrap();
    assert_eq!(third.telemetry.executed_cells, campaign.total_cells());
    assert_eq!(fs::read(&third.grid_csv).unwrap(), grid_csv);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_campaign_resumes_to_byte_identical_csvs() {
    let campaign = campaigns::by_name("smoke", &params()).unwrap();
    let total = campaign.total_cells();
    assert!(total >= 4, "test needs a few cells to interrupt between");

    // Reference: uninterrupted single pass, single-threaded.
    let ref_dir = temp_dir("interrupt-ref");
    let ref_cfg = RunnerConfig::new(ref_dir.clone());
    let reference = run_campaign(&campaign, &ref_cfg, &NullSink).unwrap();
    let ref_grid = fs::read(&reference.grid_csv).unwrap();
    let ref_summary = fs::read(&reference.summary_csv).unwrap();

    // "Interrupted" run: complete it once, then cut the ledger down to
    // two complete lines plus half of a third — exactly what a process
    // killed mid-append leaves behind.
    let dir = temp_dir("interrupt-cut");
    let cfg = RunnerConfig {
        threads: 4,
        ..RunnerConfig::new(dir.clone())
    };
    let full = run_campaign(&campaign, &cfg, &NullSink).unwrap();
    let ledger_text = fs::read_to_string(&full.ledger_path).unwrap();
    let lines: Vec<&str> = ledger_text.lines().collect();
    assert_eq!(lines.len(), total);
    let half = &lines[2][..lines[2].len() / 2];
    fs::write(
        &full.ledger_path,
        format!("{}\n{}\n{half}", lines[0], lines[1]),
    )
    .unwrap();

    // Relaunch with --resume at a different thread count: only the
    // unfinished cells run, and the exports match the reference byte
    // for byte.
    let sink = CountingSink::default();
    let cfg = RunnerConfig {
        resume: true,
        ..cfg
    };
    let resumed = run_campaign(&campaign, &cfg, &sink).unwrap();
    assert_eq!(resumed.telemetry.cached_cells, 2);
    assert_eq!(resumed.telemetry.executed_cells, total - 2);
    assert_eq!(sink.cells.load(Ordering::Relaxed), total - 2);
    assert_eq!(fs::read(&resumed.grid_csv).unwrap(), ref_grid);
    assert_eq!(fs::read(&resumed.summary_csv).unwrap(), ref_summary);

    // The repaired ledger now covers the full grid again.
    let reloaded = ziv_harness::Ledger::load(&resumed.ledger_path).unwrap();
    assert_eq!(reloaded.len(), total);
    fs::remove_dir_all(&ref_dir).ok();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn thread_count_does_not_change_exports_or_digests() {
    let campaign = campaigns::by_name("smoke", &params()).unwrap();
    let mut grids = Vec::new();
    let mut dirs = Vec::new();
    for threads in [1, 4] {
        let dir = temp_dir(&format!("threads-{threads}"));
        let cfg = RunnerConfig {
            threads,
            ..RunnerConfig::new(dir.clone())
        };
        let out = run_campaign(&campaign, &cfg, &NullSink).unwrap();
        grids.push(fs::read(&out.grid_csv).unwrap());
        dirs.push(dir);
    }
    assert_eq!(grids[0], grids[1], "grid.csv must not depend on --threads");

    // Cross-"process" cache sharing: a ledger written by one run is a
    // full cache for a separately constructed (but equal-params)
    // campaign — digests depend only on semantic cell content.
    let rebuilt = campaigns::by_name("smoke", &params()).unwrap();
    let cfg = RunnerConfig {
        threads: 2,
        resume: true,
        ..RunnerConfig::new(dirs[1].clone())
    };
    let out = run_campaign(&rebuilt, &cfg, &NullSink).unwrap();
    assert_eq!(out.telemetry.executed_cells, 0);
    for dir in dirs {
        fs::remove_dir_all(&dir).ok();
    }
}
