//! End-to-end drill of the chaos soak: every injected fault isolated,
//! surviving cells byte-identical to the fault-free pass, crash
//! recovery proven. This is the library-level twin of `zivsim soak`.

use std::time::Duration;
use ziv_harness::{campaigns, run_soak, CampaignParams, NullSink, SoakConfig};

fn temp_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir()
        .join("ziv-harness-soak-it")
        .join(format!("{name}-{}", std::process::id()))
}

#[test]
fn chaos_soak_isolates_every_fault_and_survives_a_torn_ledger() {
    let dir = temp_dir("drill");
    std::fs::remove_dir_all(&dir).ok();
    let cfg = SoakConfig {
        threads: 2,
        params: CampaignParams::tiny(),
        cell_timeout: Duration::from_secs(120),
        stall_window: Duration::from_millis(750),
        retries: 1,
        ..SoakConfig::new(dir.clone())
    };
    let report = run_soak(&cfg, &NullSink).expect("soak infrastructure must not fail");
    assert!(report.passed(), "soak violations: {:#?}", report.violations);
    // Five armed injectors, each ledgered at least once; the grid is
    // 7 specs × 3 workloads and the healthy rows all survive.
    assert_eq!(report.fault_plan.len(), 5);
    assert_eq!(report.total_cells, 21);
    assert!(
        report.chaos_failures >= 5,
        "expected every injector to fell at least one cell, got {}",
        report.chaos_failures
    );
    assert_eq!(
        report.identical_rows,
        report.total_cells - report.chaos_failures,
        "every surviving cell must match the fault-free pass byte-for-byte"
    );
    assert!(report.torn_tail_detected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_schedule_is_deterministic_per_seed() {
    let params = CampaignParams::tiny();
    let (a, faults_a) = campaigns::soak_chaos(&params);
    let (_, faults_b) = campaigns::soak_chaos(&params);
    assert_eq!(faults_a, faults_b);
    // Spec 0 (baseline) and the last spec are never faulted; the
    // back-invalidation fault sits on an inclusive spec.
    assert!(faults_a.iter().all(|f| f.spec_index != 0));
    assert!(faults_a.iter().all(|f| f.spec_index != a.specs.len() - 1));
    let skip = faults_a
        .iter()
        .find(|f| f.fault.kind_str() == "skip-back-invalidation")
        .expect("schedule includes the back-invalidation fault");
    assert_eq!(skip.spec_index, 1, "pinned to I-Hawkeye (inclusive)");

    let mut other = params;
    other.seed ^= 0xdead_beef;
    let (_, faults_c) = campaigns::soak_chaos(&other);
    assert_ne!(
        faults_a, faults_c,
        "different seeds must draw different chaos schedules"
    );
}
