//! Experiment effort knobs: `ZIV_FAST=1` shrinks workloads for smoke
//! runs, `ZIV_FULL=1` enlarges them for higher-fidelity curves.

/// Workload sizing for the figure benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Accesses per core for multiprogrammed mixes.
    pub accesses_per_core: usize,
    /// Number of heterogeneous mixes.
    pub hetero_mixes: usize,
    /// Accesses per core for the multithreaded workloads.
    pub mt_accesses_per_core: usize,
    /// Accesses per core for the 128-core TPC-E run.
    pub tpce_accesses_per_core: usize,
    /// Worker threads.
    pub threads: usize,
}

impl Effort {
    /// Reads the effort level from the environment.
    ///
    /// When both `ZIV_FAST` and `ZIV_FULL` are set, fast wins and a
    /// warning is printed to stderr (once per process) instead of
    /// silently preferring one.
    pub fn from_env() -> Self {
        let fast = std::env::var_os("ZIV_FAST").is_some();
        let full = std::env::var_os("ZIV_FULL").is_some();
        if fast && full {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: both ZIV_FAST and ZIV_FULL are set; using ZIV_FAST \
                     (unset one to silence this warning)"
                );
            });
        }
        let threads = crate::spec::default_threads();
        if fast {
            Effort {
                accesses_per_core: 15_000,
                hetero_mixes: 2,
                mt_accesses_per_core: 20_000,
                tpce_accesses_per_core: 2_000,
                threads,
            }
        } else if full {
            Effort {
                accesses_per_core: 200_000,
                hetero_mixes: 8,
                mt_accesses_per_core: 200_000,
                tpce_accesses_per_core: 30_000,
                threads,
            }
        } else {
            Effort {
                accesses_per_core: 40_000,
                hetero_mixes: 4,
                mt_accesses_per_core: 60_000,
                tpce_accesses_per_core: 6_000,
                threads,
            }
        }
    }
}

impl Default for Effort {
    fn default() -> Self {
        Effort::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_effort_is_nonzero() {
        let e = Effort::from_env();
        assert!(e.accesses_per_core > 0);
        assert!(e.threads > 0);
    }
}
