//! Chrome trace-event / Perfetto export of a run's observability
//! payload (DESIGN.md §15).
//!
//! [`perfetto_to_json`] renders each observed cell as one trace-event
//! *process* inside a single `{"traceEvents": [...]}` document that
//! loads directly into <https://ui.perfetto.dev> or
//! `chrome://tracing`:
//!
//! - `"M"` metadata events name each process `"<config> / <workload>"`
//!   and give every core its own thread track;
//! - the self-profiler's sections become `"X"` duration events laid
//!   end-to-end on a dedicated `profile` track (span length = accumulated
//!   wall time in µs);
//! - each epoch sample becomes `"C"` counter events (`inclusion_victims`,
//!   `llc_misses`, `relocations`) with `ts` at the epoch's first access,
//!   so the counter tracks plot the run's time-series;
//! - flight-recorder ring events become instant `"X"` slices on their
//!   core's track at their simulation cycle, honoring the same
//!   [`EventFilter`] the `--events` flag feeds to the event trace;
//! - forensics causal chains become `"s"`/`"f"` *flow* events: the
//!   instigating eviction starts a flow (`id` = chain sequence) on the
//!   instigator core's track and each victimized core finishes it, so
//!   Perfetto draws an arrow from the eviction decision to every core
//!   it reached into.
//!
//! Timestamps are simulation cycles rendered as microseconds — a
//! visualization scale, not wall time.

use crate::csv::ObservedCell;
use std::io::Write;
use std::path::Path;
use ziv_common::fsutil::create_parent_dirs;
use ziv_common::json::JsonValue;
use ziv_common::SimError;
use ziv_core::forensics::CausalChain;
use ziv_core::observe::{EventFilter, METRICS_COLUMNS};
use ziv_core::ProfileSection;

/// The epoch counters exported as `"C"` counter tracks.
const COUNTER_COLUMNS: [&str; 3] = ["inclusion_victims", "llc_misses", "relocations"];

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn metadata(name: &str, pid: u64, tid: Option<u64>, value: &str) -> JsonValue {
    let mut fields = vec![
        ("name", JsonValue::str(name)),
        ("ph", JsonValue::str("M")),
        ("pid", JsonValue::u64(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", JsonValue::u64(tid)));
    }
    fields.push(("args", obj(vec![("name", JsonValue::str(value))])));
    obj(fields)
}

/// Thread id used for the profiler's duration track (cores occupy
/// tids `0..cores`, so the profile track sits above them).
const PROFILE_TID: u64 = 64;

fn chain_slice_name(chain: &CausalChain) -> String {
    format!(
        "{} evict line {:#x} ({})",
        chain.kind.label(),
        chain.line.raw(),
        chain.reason.label()
    )
}

/// Renders the observed cells into one Chrome trace-event JSON
/// document. Ring events are kept only when their kind passes
/// `filter` — the same filter `--events` builds via
/// [`EventFilter::parse`].
pub fn perfetto_to_json(cells: &[ObservedCell<'_>], filter: EventFilter) -> JsonValue {
    let mut events = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let pid = i as u64 + 1;
        let obs = cell.observations;
        events.push(metadata(
            "process_name",
            pid,
            None,
            &format!("{} / {}", cell.config, cell.workload),
        ));

        // Per-core thread tracks (cores named even when eventless, so
        // chain flows always land on a labelled track).
        let cores_seen = obs
            .events
            .iter()
            .filter_map(|e| e.core)
            .map(|c| c as u64 + 1)
            .chain(obs.forensics.iter().flat_map(|f| {
                f.chains
                    .iter()
                    .map(|c| c.instigator_core.index() as u64 + 1)
            }))
            .max()
            .unwrap_or(0);
        for core in 0..cores_seen {
            events.push(metadata(
                "thread_name",
                pid,
                Some(core),
                &format!("core {core}"),
            ));
        }

        // Profiler sections: end-to-end spans on their own track.
        if let Some(profile) = obs.profile.as_ref() {
            events.push(metadata("thread_name", pid, Some(PROFILE_TID), "profile"));
            let mut ts = 0u64;
            for section in ProfileSection::ALL {
                let dur = profile.nanos(section) / 1_000;
                if profile.calls(section) == 0 {
                    continue;
                }
                events.push(obj(vec![
                    ("name", JsonValue::str(section.label())),
                    ("cat", JsonValue::str("profile")),
                    ("ph", JsonValue::str("X")),
                    ("pid", JsonValue::u64(pid)),
                    ("tid", JsonValue::u64(PROFILE_TID)),
                    ("ts", JsonValue::u64(ts)),
                    ("dur", JsonValue::u64(dur.max(1))),
                    (
                        "args",
                        obj(vec![("calls", JsonValue::u64(profile.calls(section)))]),
                    ),
                ]));
                ts += dur.max(1);
            }
        }

        // Epoch counter tracks.
        for epoch in &obs.epochs {
            for col in COUNTER_COLUMNS {
                let Some(idx) = METRICS_COLUMNS.iter().position(|c| *c == col) else {
                    continue;
                };
                let delta = epoch.global[idx].max(0) as u64;
                events.push(obj(vec![
                    ("name", JsonValue::str(col)),
                    ("ph", JsonValue::str("C")),
                    ("pid", JsonValue::u64(pid)),
                    ("ts", JsonValue::u64(epoch.start_access)),
                    ("args", obj(vec![(col, JsonValue::u64(delta))])),
                ]));
            }
        }

        // Flight-recorder ring events, `--events`-filtered.
        for ev in obs.events.iter().filter(|e| filter.contains(e.kind)) {
            let tid = ev.core.map(|c| c as u64).unwrap_or(0);
            let mut args = vec![("line", JsonValue::u64(ev.line))];
            if let Some(bank) = ev.bank {
                args.push(("bank", JsonValue::u64(bank as u64)));
            }
            if let Some(set) = ev.set {
                args.push(("set", JsonValue::u64(set as u64)));
            }
            if let Some(way) = ev.way {
                args.push(("way", JsonValue::u64(way as u64)));
            }
            events.push(obj(vec![
                ("name", JsonValue::str(ev.kind.label())),
                ("cat", JsonValue::str("events")),
                ("ph", JsonValue::str("X")),
                ("pid", JsonValue::u64(pid)),
                ("tid", JsonValue::u64(tid)),
                ("ts", JsonValue::u64(ev.cycle)),
                ("dur", JsonValue::u64(1)),
                ("args", obj(args)),
            ]));
        }

        // Causal chains as flow arrows: instigator slice starts the
        // flow, each victim core's slice finishes it.
        if let Some(forensics) = obs.forensics.as_ref() {
            for chain in &forensics.chains {
                let name = chain_slice_name(chain);
                let itid = chain.instigator_core.index() as u64;
                events.push(obj(vec![
                    ("name", JsonValue::str(name.as_str())),
                    ("cat", JsonValue::str("forensics")),
                    ("ph", JsonValue::str("X")),
                    ("pid", JsonValue::u64(pid)),
                    ("tid", JsonValue::u64(itid)),
                    ("ts", JsonValue::u64(chain.cycle)),
                    ("dur", JsonValue::u64(1)),
                    (
                        "args",
                        obj(vec![
                            ("access", JsonValue::u64(chain.instigator_access)),
                            ("victims", JsonValue::u64(chain.victim_count as u64)),
                            ("refetch_cycles", JsonValue::u64(chain.refetch_cycles)),
                        ]),
                    ),
                ]));
                events.push(obj(vec![
                    ("name", JsonValue::str("chain")),
                    ("cat", JsonValue::str("forensics")),
                    ("ph", JsonValue::str("s")),
                    ("id", JsonValue::u64(chain.seq)),
                    ("pid", JsonValue::u64(pid)),
                    ("tid", JsonValue::u64(itid)),
                    ("ts", JsonValue::u64(chain.cycle)),
                ]));
                for victim in 0..64u64 {
                    if chain.victim_mask & (1 << victim) == 0 {
                        continue;
                    }
                    events.push(obj(vec![
                        ("name", JsonValue::str("back-invalidated")),
                        ("cat", JsonValue::str("forensics")),
                        ("ph", JsonValue::str("X")),
                        ("pid", JsonValue::u64(pid)),
                        ("tid", JsonValue::u64(victim)),
                        ("ts", JsonValue::u64(chain.cycle + 1)),
                        ("dur", JsonValue::u64(1)),
                        (
                            "args",
                            obj(vec![("line", JsonValue::u64(chain.line.raw()))]),
                        ),
                    ]));
                    events.push(obj(vec![
                        ("name", JsonValue::str("chain")),
                        ("cat", JsonValue::str("forensics")),
                        ("ph", JsonValue::str("f")),
                        ("bp", JsonValue::str("e")),
                        ("id", JsonValue::u64(chain.seq)),
                        ("pid", JsonValue::u64(pid)),
                        ("tid", JsonValue::u64(victim)),
                        ("ts", JsonValue::u64(chain.cycle + 1)),
                    ]));
                }
            }
        }
    }
    obj(vec![
        ("traceEvents", JsonValue::Arr(events)),
        ("displayTimeUnit", JsonValue::str("ns")),
    ])
}

/// Writes the Perfetto trace JSON to `path`, creating missing parent
/// directories first.
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_perfetto_json(
    path: &Path,
    cells: &[ObservedCell<'_>],
    filter: EventFilter,
) -> Result<(), SimError> {
    create_parent_dirs(path)?;
    let doc = perfetto_to_json(cells, filter);
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create perfetto trace", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "{doc}").map_err(|e| SimError::io("write perfetto trace", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush perfetto trace", path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::{json, CoreId, LineAddr};
    use ziv_core::forensics::{ChainKind, ForensicsObservatory};
    use ziv_core::llc::VictimReason;
    use ziv_core::observe::{EventKind, Observations, TraceEvent};

    fn observations_with_chain() -> Observations {
        let mut f = ForensicsObservatory::new(2, 2, 4);
        f.open_chain(
            ChainKind::Inclusive,
            CoreId::new(0),
            7,
            70,
            LineAddr::new(0x33),
            VictimReason::Baseline,
        );
        f.chain_victim(CoreId::new(1));
        f.close_chain();
        Observations {
            epochs: Vec::new(),
            events: vec![
                TraceEvent {
                    kind: EventKind::Fill,
                    access_index: 1,
                    cycle: 10,
                    line: 0x33,
                    core: Some(0),
                    bank: Some(1),
                    set: Some(3),
                    way: Some(0),
                },
                TraceEvent {
                    kind: EventKind::BackInvalidation,
                    access_index: 7,
                    cycle: 70,
                    line: 0x33,
                    core: Some(1),
                    bank: Some(1),
                    set: Some(3),
                    way: None,
                },
            ],
            events_recorded: 2,
            heatmap: None,
            latency: None,
            leakage: None,
            forensics: Some(f.finish()),
            profile: None,
            dir_slice_occupancy: Vec::new(),
        }
    }

    fn phases(doc: &JsonValue) -> Vec<String> {
        doc.get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap().to_string())
            .collect()
    }

    #[test]
    fn trace_round_trips_and_carries_flow_events() {
        let obs = observations_with_chain();
        let cells = [ObservedCell {
            config: "I-LRU",
            workload: "mix0",
            observations: &obs,
        }];
        let doc = perfetto_to_json(&cells, EventFilter::all());
        let text = doc.to_string();
        let back = json::parse(&text).expect("valid JSON");
        let ph = phases(&back);
        assert!(ph.contains(&"M".to_string()), "process metadata");
        assert!(ph.contains(&"s".to_string()), "flow start");
        assert!(ph.contains(&"f".to_string()), "flow finish");
        // 2 ring events + 1 chain slice + 1 victim slice.
        assert_eq!(ph.iter().filter(|p| *p == "X").count(), 4);
    }

    #[test]
    fn event_filter_prunes_ring_events_but_not_chains() {
        let obs = observations_with_chain();
        let cells = [ObservedCell {
            config: "I-LRU",
            workload: "mix0",
            observations: &obs,
        }];
        let filtered = perfetto_to_json(
            &cells,
            EventFilter::none().with(EventKind::BackInvalidation),
        );
        let text = filtered.to_string();
        assert!(!text.contains("\"fill\""), "fill events pruned");
        assert!(text.contains("back_invalidation") || text.contains("back-invalidated"));
        assert!(text.contains("\"s\""), "chains survive filtering");
    }

    #[test]
    fn write_creates_parseable_file() {
        let obs = observations_with_chain();
        let cells = [ObservedCell {
            config: "I-LRU",
            workload: "mix0",
            observations: &obs,
        }];
        let dir = std::env::temp_dir().join(format!("ziv-perfetto-{}", std::process::id()));
        let path = dir.join("trace.json");
        write_perfetto_json(&path, &cells, EventFilter::all()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        json::parse(&text).expect("file is valid JSON");
        std::fs::remove_dir_all(&dir).ok();
    }
}
