//! # ziv-sim
//!
//! The simulation driver and experiment harness: feeds workload traces
//! through a [`ziv_core::CacheHierarchy`], models per-core timing (base
//! CPI + exposed miss latency under a per-workload memory-level-
//! parallelism factor), runs experiment grids in parallel across OS
//! threads, and aggregates the paper's reporting metrics (weighted
//! speedup, normalized miss counts, relocation statistics, EPI).
//!
//! # Examples
//!
//! ```
//! use ziv_sim::{RunSpec, run_one, Effort};
//! use ziv_workloads::{mixes, ScaleParams};
//! use ziv_common::config::SystemConfig;
//! use ziv_core::LlcMode;
//!
//! let sys = SystemConfig::scaled();
//! let wl = mixes::homogeneous(
//!     ziv_workloads::apps::APPS[4], 2, 2_000, 1, ScaleParams::from_system(&sys));
//! let spec = RunSpec::new("I-LRU", sys).with_mode(LlcMode::Inclusive);
//! let result = run_one(&spec, &wl);
//! assert!(result.total_instructions() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod csv;
mod driver;
mod effort;
mod perfetto;
mod report;
mod sampling;
mod spec;

pub use csv::{
    blame_to_csv, grid_to_csv, heatmap_to_csv, latency_to_csv, leakage_to_csv, sampling_to_csv,
    summary_to_csv, timeseries_to_csv, validation_to_csv, write_blame_csv, write_grid_csv,
    write_heatmap_csv, write_latency_csv, write_leakage_csv, write_sampling_csv, write_summary_csv,
    write_timeseries_csv, write_validation_csv, ObservedCell, SampledCell, ValidationRow,
    BLAME_COLUMNS, GRID_COLUMNS, LATENCY_COLUMNS, LEAKAGE_COLUMNS, SAMPLING_COLUMNS,
    VALIDATION_COLUMNS,
};
pub use driver::{
    derived_budget, run_one, run_one_checked, run_one_instrumented, run_one_supervised,
    run_one_traced, CellBudget, CoreRunStats, RunOptions, RunResult,
};
pub use effort::Effort;
pub use perfetto::{perfetto_to_json, write_perfetto_json};
pub use report::{normalized_metric, speedup_summary, NormalizedRows};
pub use sampling::{
    run_one_sampled, run_one_sampled_instrumented, run_one_sampled_supervised, run_paired_sampled,
    run_paired_sampled_instrumented, IntervalEstimate, PairedSampleReport, SampledRun,
    SamplingPlan, SamplingProfile, StopReason,
};
pub use spec::{
    default_threads, run_cells, run_cells_checked, run_grid, CellRun, GridObserver, GridResult,
    NoopObserver, RunSpec,
};
pub use ziv_common::stats::{Confidence, ConfidenceInterval, RunningMoments};
pub use ziv_core::observe::{
    EventFilter, EventKind, EventTraceConfig, Observations, ObserveConfig, ProbeSnapshot,
    SamplingProgress, TelemetryProbe, TraceEvent,
};
pub use ziv_core::{
    AccessClass, CancelToken, CausalChain, ChainKind, CoreLeakage, ForensicsReport,
    LatencyBreakdown, LatencyComponent, LatencyReport, LeakageReport, ProfileReport,
    ProfileSection, VictimReason,
};
