//! The per-run simulation driver.
//!
//! Cores advance in smallest-cycle-first order (deterministic global
//! interleaving); each access charges `(1 + gap) × base_cpi` for the
//! non-memory work plus the *exposed* fraction of its memory latency,
//! where the workload's `overlap` factor models the latency hiding an
//! out-of-order core with MLP achieves (DESIGN.md §5.1).

use crate::spec::RunSpec;
use ziv_common::SimError;
use ziv_core::observe::{
    EpochSlicer, FlightRecorder, Observations, ObserveConfig, ProbeSnapshot, TelemetryProbe,
};
use ziv_core::profile::{ProfileSection, SelfProfiler};
use ziv_core::{Access, AuditCadence, Auditor, CacheHierarchy, CancelToken, Metrics};
use ziv_workloads::Workload;

/// Per-cell cycle budget for the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellBudget {
    /// Explicit per-core cycle cap (`--cell-budget`).
    Cycles(u64),
    /// Generous cap derived from the workload size (see
    /// [`derived_budget`]): orders of magnitude above any healthy run,
    /// tripped only by a livelocked or stalled model.
    Derived,
}

impl CellBudget {
    /// Resolves the budget, in per-core cycles, for `workload`.
    pub fn cycles_for(&self, workload: &Workload) -> u64 {
        match self {
            CellBudget::Cycles(c) => *c,
            CellBudget::Derived => derived_budget(workload),
        }
    }
}

/// The derived watchdog budget: every access can lap the trace
/// [`32`-fold under the issue cap] and still spend thousands of cycles
/// without coming near this, so only a genuinely stuck model trips it.
pub fn derived_budget(workload: &Workload) -> u64 {
    workload
        .total_accesses()
        .saturating_mul(50_000)
        .max(10_000_000)
}

/// Robustness and observability options for a checked run: audit
/// cadence, watchdog budget, and the flight-recorder configuration.
/// The default (`audit off`, no budget, observe nothing) makes
/// [`run_one_checked`] behave exactly like [`run_one`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// How often the auditor walks the hierarchy.
    pub audit: AuditCadence,
    /// Watchdog budget; `None` disables the watchdog.
    pub budget: Option<CellBudget>,
    /// What to observe (epoch slicing, event tracing, heatmaps).
    /// Never digested and never serialized into result ledgers:
    /// observing a run must not change its outcome.
    pub observe: ObserveConfig,
    /// Statistical sampling plan, consumed by
    /// [`run_one_sampled`](crate::run_one_sampled)'s interval-sampling
    /// loop. The full-run entry points (`run_one*`) ignore it — callers
    /// route sampled runs explicitly — so `None` (the default) keeps
    /// every existing path byte-identical to pre-sampling builds.
    /// Sampled results are estimates and are never written to the
    /// content-addressed result ledger.
    pub sampling: Option<crate::sampling::SamplingPlan>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            audit: AuditCadence::Off,
            budget: None,
            observe: ObserveConfig::disabled(),
            sampling: None,
        }
    }
}

/// Per-core results of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreRunStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Application driving the core.
    pub app_name: &'static str,
}

impl CoreRunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.checked_ipc().unwrap_or(0.0)
    }

    /// Instructions per cycle, or `None` when the core recorded no
    /// cycles (a degenerate run that must not be used as a speedup
    /// denominator — dividing by a 0 IPC yields `inf`/`NaN` that
    /// silently poisons downstream geomeans).
    pub fn checked_ipc(&self) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(self.instructions as f64 / self.cycles as f64)
        }
    }
}

/// Results of simulating one workload under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Configuration label (e.g. `"I-LRU"`, `"ZIV-LikelyDead"`).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Per-core statistics.
    pub cores: Vec<CoreRunStats>,
    /// Hierarchy statistics.
    pub metrics: Metrics,
}

impl RunResult {
    /// Total instructions across cores.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Weighted speedup relative to a baseline run of the same workload:
    /// `(1/n) Σ_i IPC_i / IPC_i^base` — the standard multiprogrammed
    /// performance metric behind the paper's speedup figures.
    ///
    /// Cores whose *baseline* IPC is zero (a zero-cycle or zero-
    /// instruction baseline core) carry no speedup information and are
    /// excluded from the average rather than contributing `inf`/`NaN`;
    /// if every core is excluded the neutral speedup 1.0 is returned.
    ///
    /// # Panics
    ///
    /// Panics if the runs have different core counts.
    pub fn weighted_speedup(&self, baseline: &RunResult) -> f64 {
        assert_eq!(
            self.cores.len(),
            baseline.cores.len(),
            "core count mismatch"
        );
        let mut sum = 0.0;
        let mut n = 0usize;
        for (a, b) in self.cores.iter().zip(&baseline.cores) {
            if let Some(base_ipc) = b.checked_ipc().filter(|&v| v > 0.0) {
                sum += a.ipc() / base_ipc;
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }

    /// Throughput speedup for multithreaded workloads: baseline total
    /// time / this total time (all threads run the same total work).
    pub fn runtime_speedup(&self, baseline: &RunResult) -> f64 {
        let t_self = self.cores.iter().map(|c| c.cycles).max().unwrap_or(1) as f64;
        let t_base = baseline.cores.iter().map(|c| c.cycles).max().unwrap_or(1) as f64;
        t_base / t_self
    }
}

/// Simulates `workload` under `spec` and returns the results.
///
/// # Panics
///
/// Panics if the workload's core count exceeds the system's.
pub fn run_one(spec: &RunSpec, workload: &Workload) -> RunResult {
    run_one_checked(spec, workload, &RunOptions::default())
        .expect("a run with auditing and watchdog disabled is infallible")
}

/// Simulates `workload` under `spec` with runtime invariant auditing and
/// an optional watchdog budget; audit violations and budget trips
/// propagate as [`SimError`] values instead of panics.
///
/// # Errors
///
/// - [`SimError::Audit`] when an audit walk (at `opts.audit` cadence)
///   finds an invariant violation — carrying the violation kind and the
///   0-based index of the access after which it was first observed.
/// - [`SimError::BudgetExceeded`] when any core's cycle clock crosses
///   the watchdog budget before its trace completes.
///
/// # Panics
///
/// Panics if the workload's core count exceeds the system's.
pub fn run_one_checked(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
) -> Result<RunResult, SimError> {
    run_one_traced(spec, workload, opts).0
}

/// Publishes the driver's live per-core instruction/cycle clocks into
/// the hierarchy's metrics so an epoch sample can report per-epoch IPC.
/// Safe to do mid-run: nothing in the simulator reads these fields, and
/// the end-of-run snapshot rewind overwrites them regardless.
pub(crate) fn publish_core_clocks(h: &mut CacheHierarchy, instructions: &[u64], cycles: &[f64]) {
    let per_core = &mut h.metrics_mut().per_core;
    for c in 0..instructions.len() {
        per_core[c].instructions = instructions[c];
        per_core[c].cycles = cycles[c] as u64;
    }
}

/// Drains the slicer and the hierarchy's recorder into the run's
/// observation payload; `None` when observability was disabled.
/// `window_cycles` is the co-run window length (the slowest core's
/// clock) stamped into the leakage report so its per-Mcycle rate is
/// well-defined.
pub(crate) fn collect_observations(
    h: &mut CacheHierarchy,
    slicer: Option<EpochSlicer>,
    observing: bool,
    window_cycles: u64,
) -> Option<Box<Observations>> {
    if !observing {
        return None;
    }
    let (events, events_recorded, heatmap, latency, leakage, forensics) = match h.take_recorder() {
        Some(rec) => rec.finish(),
        None => (Vec::new(), 0, None, None, None, None),
    };
    let leakage = leakage.map(|mut l| {
        l.cycles = window_cycles;
        l
    });
    let profile = h.take_profiler().map(|p| p.report());
    Some(Box::new(Observations {
        epochs: slicer.map_or_else(Vec::new, EpochSlicer::into_samples),
        events,
        events_recorded,
        heatmap,
        latency,
        leakage,
        forensics,
        profile,
        dir_slice_occupancy: h.directory().slice_occupancies(),
    }))
}

/// Build a [`ProbeSnapshot`] from the driver's running state — a few
/// counter reads, no allocation. Shared with the sampling loop, which
/// passes its current phase as `stratum`.
pub(crate) fn probe_snapshot(
    h: &CacheHierarchy,
    instructions: &[u64],
    cycles: &[f64],
    issued: u64,
    stratum: u64,
) -> ProbeSnapshot {
    let m = h.metrics();
    ProbeSnapshot {
        access_index: issued,
        instructions: instructions.iter().sum(),
        cycles: cycles.iter().copied().fold(0f64, f64::max) as u64,
        llc_accesses: m.llc_accesses,
        llc_misses: m.llc_misses,
        inclusion_victims: m.inclusion_victims,
        relocations: m.relocations,
        stratum,
    }
}

/// [`run_one_checked`] plus the flight-recorder payload: the second
/// element carries the epoch time-series, retained events, and heatmaps
/// when `opts.observe` enables any of them — **even when the run
/// fails**, so failure records can embed the events leading up to the
/// violation. `None` when observability is disabled.
pub fn run_one_traced(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
) -> (Result<RunResult, SimError>, Option<Box<Observations>>) {
    run_one_supervised(spec, workload, opts, None)
}

/// [`run_one_traced`] under an optional cooperative [`CancelToken`].
///
/// When `cancel` is `Some`, the access loop polls the token once per
/// access (one relaxed atomic load) and publishes coarse progress; a
/// fired token stops the run with [`SimError::Timeout`] carrying the
/// cancellation reason and the access position. When `cancel` is `None`
/// the poll site is a single never-taken branch, so unsupervised runs
/// stay byte-identical — the property the differential determinism
/// tests pin.
///
/// A hierarchy wedged by [`ziv_core::FaultInjection::HangCore`] parks
/// here, burning wall-clock time (not simulated cycles) until the token
/// fires; without a token the hang is converted into an immediate
/// [`SimError::Timeout`] rather than wedging the caller forever.
pub fn run_one_supervised(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
    cancel: Option<&CancelToken>,
) -> (Result<RunResult, SimError>, Option<Box<Observations>>) {
    run_one_instrumented(spec, workload, opts, cancel, None)
}

/// [`run_one_supervised`] plus an optional live-telemetry probe.
///
/// The probe mirrors the cancel token's cost model: when `probe` is
/// `Some`, the access loop publishes a [`ProbeSnapshot`] every 256
/// accesses (the cadence the supervisor already polls at); when `None`
/// the publish site is a single never-taken branch, so unwatched runs
/// add zero allocations and no mmap or clock syscalls to the hot path.
/// Probes observe, never steer: results are byte-identical either way.
pub fn run_one_instrumented(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
    cancel: Option<&CancelToken>,
    probe: Option<&dyn TelemetryProbe>,
) -> (Result<RunResult, SimError>, Option<Box<Observations>>) {
    let hier_cfg = spec.build_hierarchy_config(workload);
    let mut h = CacheHierarchy::new(&hier_cfg);
    let ncores = workload.cores();
    assert!(
        ncores <= spec.system.cores,
        "workload has {ncores} cores but the system has {}",
        spec.system.cores
    );
    let base_cpi = spec.system.base_cpi;

    // Per-core progress state. Early-finishing cores restart their
    // trace and keep running (the paper's protocol), so contention
    // stays representative until the last core completes its segment;
    // per-core statistics are snapshotted at each core's *first*
    // completion.
    let mut cursor = vec![0usize; ncores];
    let mut cycles = vec![0f64; ncores];
    let mut instructions = vec![0u64; ncores];
    let mut completed = vec![false; ncores];
    let mut snapshots: Vec<Option<(u64, u64, ziv_core::metrics::CoreMetrics)>> = vec![None; ncores];
    let mut done = 0usize;
    // Restarted records get fresh, never-in-the-future sequence numbers
    // so the MIN oracle treats them as never-reused.
    let total_seq = workload.total_accesses() * ncores as u64;
    let mut restart_seq = total_seq;
    // Bound the restart inflation: a fast private-resident core
    // co-running with a slow streaming core could otherwise re-run its
    // trace a hundred times while the slowest finishes. A core parks
    // after LAP_CAP completed laps; parked cores keep their cache
    // presence but stop issuing, and the measured window for a fast
    // core is its LAP_CAP laps of co-run exposure.
    const LAP_CAP: u32 = 12;
    let mut laps = vec![0u32; ncores];
    let mut issued = 0u64;
    let issue_cap = workload.total_accesses().saturating_mul(32); // backstop
    let mut auditor = Auditor::new(opts.audit);
    let budget_cycles = opts.budget.map(|b| b.cycles_for(workload));
    let observing = opts.observe.is_enabled();
    if let Some(mut rec) = FlightRecorder::new(
        &opts.observe,
        ncores,
        spec.system.llc.banks,
        spec.system.llc.bank_geometry.sets as usize,
    ) {
        // The leakage observatory needs the workload's attack roles, so
        // the driver (not the recorder constructor) attaches it.
        if opts.observe.leakage {
            if let Some(plan) = workload.attack.as_ref() {
                rec.attach_leakage(ziv_core::LeakageObservatory::new(
                    ncores,
                    spec.system.llc.banks,
                    spec.system.llc.bank_geometry.sets as usize,
                    &plan.attacker_cores,
                    &plan.victim_cores,
                    &plan.probe_lines,
                ));
            }
        }
        h.attach_recorder(rec);
    }
    let profiling = opts.observe.profile;
    if profiling {
        h.attach_profiler(Box::new(SelfProfiler::new()));
    }
    let mut slicer = opts.observe.epoch.map(|n| EpochSlicer::new(n, ncores));
    let mut failure: Option<SimError> = None;

    // Smallest-cycle-first global interleaving.
    'sim: while done < ncores && issued < issue_cap {
        if let Some(tok) = cancel {
            if let Some(reason) = tok.fired(issued) {
                failure = Some(SimError::Timeout {
                    reason,
                    access_index: issued,
                });
                break 'sim;
            }
            // Fine-grained enough (256 accesses) that a supervisor's
            // stall detector can tell a slow cell from a wedged one
            // even in unoptimized builds.
            if issued & 0xFF == 0 {
                tok.note_progress(issued);
            }
        }
        if let Some(p) = probe {
            if issued & 0xFF == 0 {
                p.publish_progress(&probe_snapshot(&h, &instructions, &cycles, issued, 0));
            }
        }
        // Find the lagging unparked core.
        let mut core = usize::MAX;
        let mut best = f64::INFINITY;
        for c in 0..ncores {
            if laps[c] < LAP_CAP && cycles[c] < best {
                best = cycles[c];
                core = c;
            }
        }
        if core == usize::MAX {
            break; // everyone parked (cannot happen before done == ncores)
        }
        let trace = &workload.traces[core];
        let rec = trace.records[cursor[core]];
        // The policy-independent global stream position (round-robin by
        // record index), shared with the MIN oracle's future knowledge.
        let seq = if completed[core] {
            restart_seq += 1;
            restart_seq
        } else {
            (cursor[core] * ncores + core) as u64
        };
        cursor[core] += 1;
        let finishing = cursor[core] == trace.records.len();
        if finishing {
            cursor[core] = 0;
        }

        let a = Access {
            core: ziv_common::CoreId::new(core),
            addr: rec.addr,
            pc: rec.pc,
            is_write: rec.is_write,
            is_instr: false,
        };
        let now = cycles[core] as u64;
        let t0 = profiling.then(std::time::Instant::now);
        let lat = h.access(&a, now, seq);
        if let Some(t0) = t0 {
            h.profile_add(ProfileSection::Hierarchy, t0.elapsed());
        }
        let exposed = lat as f64 * (1.0 - trace.overlap);
        cycles[core] += (1 + rec.gap as u64) as f64 * base_cpi + exposed;
        instructions[core] += 1 + rec.gap as u64;

        let access_index = issued;
        issued += 1;
        if h.is_hung() {
            // An injected hang wedged the model mid-access: no further
            // progress is possible. Park on wall-clock time (the real
            // hang signature) until the supervisor cancels us; without
            // a supervisor, fail immediately instead of wedging the
            // caller forever.
            let reason = match cancel {
                Some(tok) => loop {
                    if let Some(reason) = tok.fired(issued) {
                        break reason;
                    }
                    tok.note_progress(issued);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                },
                None => "model hung (hang-core fault) with no supervisor attached".into(),
            };
            failure = Some(SimError::Timeout {
                reason,
                access_index,
            });
            break 'sim;
        }
        if auditor.due() {
            let t0 = profiling.then(std::time::Instant::now);
            let verdict = Auditor::check(&h, access_index);
            if let Some(t0) = t0 {
                h.profile_add(ProfileSection::Audit, t0.elapsed());
            }
            if let Err(v) = verdict {
                h.record_audit_violation(&v, now);
                failure = Some(SimError::Audit(v));
                break 'sim;
            }
        }
        if let Some(budget) = budget_cycles {
            let c = cycles[core] as u64;
            if c > budget {
                failure = Some(SimError::BudgetExceeded {
                    budget_cycles: budget,
                    core,
                    cycles: c,
                    access_index,
                });
                break 'sim;
            }
        }
        if let Some(sl) = slicer.as_mut() {
            if sl.due(issued) {
                publish_core_clocks(&mut h, &instructions, &cycles);
                sl.slice(issued, h.metrics());
            }
        }
        if finishing {
            laps[core] += 1;
            if !completed[core] {
                completed[core] = true;
                done += 1;
            }
            // Snapshot at every completed lap: the reported IPC then
            // covers (nearly) the whole co-run window, so repeated
            // inclusion-victim damage to fast cores is measured.
            snapshots[core] = Some((
                instructions[core],
                cycles[core] as u64,
                h.metrics().per_core[core],
            ));
        }
    }

    if let Some(err) = failure {
        // Close the epoch series at the failure point so partial
        // samples still telescope to the metrics-at-failure.
        if let Some(sl) = slicer.as_mut() {
            publish_core_clocks(&mut h, &instructions, &cycles);
            sl.finish(issued, h.metrics());
        }
        let window = cycles.iter().copied().fold(0f64, f64::max) as u64;
        let obs = collect_observations(&mut h, slicer, observing, window);
        return (Err(err), obs);
    }

    for c in 0..ncores {
        if snapshots[c].is_none() {
            // Issue cap reached before this core finished: snapshot its
            // progress so far.
            snapshots[c] = Some((instructions[c], cycles[c] as u64, h.metrics().per_core[c]));
        }
        let (instr, cyc, mut per_core) = snapshots[c].expect("every core snapshotted");
        per_core.instructions = instr;
        per_core.cycles = cyc;
        h.metrics_mut().per_core[c] = per_core;
        instructions[c] = instr;
        cycles[c] = cyc as f64;
    }
    h.finalize();
    debug_assert!(h.verify_invariants().is_ok(), "{:?}", h.verify_invariants());
    // The closing sample is taken *after* the per-core lap rewind and
    // finalize() above, so the epoch deltas sum exactly to the final
    // aggregate metrics (its per-core deltas may be negative).
    if let Some(sl) = slicer.as_mut() {
        sl.finish(issued, h.metrics());
    }
    let window = cycles.iter().copied().fold(0f64, f64::max) as u64;
    let observations = collect_observations(&mut h, slicer, observing, window);

    let result = RunResult {
        label: spec.label.clone(),
        workload: workload.name.clone(),
        cores: (0..ncores)
            .map(|c| CoreRunStats {
                instructions: instructions[c],
                cycles: cycles[c] as u64,
                app_name: workload.traces[c].app_name,
            })
            .collect(),
        metrics: h.metrics().clone(),
    };
    (Ok(result), observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunSpec;
    use ziv_common::config::SystemConfig;
    use ziv_core::{LlcMode, ZivProperty};
    use ziv_workloads::{apps, mixes, ScaleParams};

    fn small_workload(cores: usize) -> Workload {
        let sys = SystemConfig::scaled();
        mixes::homogeneous(
            apps::APPS[4],
            cores,
            3_000,
            1,
            ScaleParams::from_system(&sys),
        )
    }

    #[test]
    fn run_produces_cycles_and_instructions() {
        let spec = RunSpec::new("I-LRU", SystemConfig::scaled());
        let r = run_one(&spec, &small_workload(2));
        assert_eq!(r.cores.len(), 2);
        for c in &r.cores {
            assert!(c.instructions > 3_000);
            assert!(c.cycles > 0);
            assert!(c.ipc() > 0.0);
        }
    }

    #[test]
    fn weighted_speedup_of_self_is_one() {
        let spec = RunSpec::new("I-LRU", SystemConfig::scaled());
        let r = run_one(&spec, &small_workload(2));
        assert!((r.weighted_speedup(&r) - 1.0).abs() < 1e-12);
        assert!((r.runtime_speedup(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = RunSpec::new("ZIV", SystemConfig::scaled())
            .with_mode(LlcMode::Ziv(ZivProperty::LikelyDead));
        let wl = small_workload(2);
        let a = run_one(&spec, &wl);
        let b = run_one(&spec, &wl);
        assert_eq!(a.metrics.llc_misses, b.metrics.llc_misses);
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
    }

    #[test]
    fn zero_cycle_baseline_core_does_not_poison_speedup() {
        let spec = RunSpec::new("I-LRU", SystemConfig::scaled());
        let mut base = run_one(&spec, &small_workload(2));
        let good = run_one(&spec, &small_workload(2));
        // A parked/degenerate baseline core: zero cycles, zero IPC.
        base.cores[1].cycles = 0;
        base.cores[1].instructions = 0;
        assert_eq!(base.cores[1].checked_ipc(), None);
        let s = good.weighted_speedup(&base);
        assert!(s.is_finite(), "speedup must stay finite, got {s}");
        assert!(s > 0.0);
        // All-degenerate baseline: neutral speedup, still finite.
        base.cores[0].cycles = 0;
        assert_eq!(good.weighted_speedup(&base), 1.0);
    }

    #[test]
    fn min_policy_runs_through_spec() {
        let spec = RunSpec::new("I-MIN", SystemConfig::scaled())
            .with_policy(ziv_replacement::PolicyKind::Min);
        let r = run_one(&spec, &small_workload(2));
        assert!(r.metrics.llc_accesses > 0);
    }

    #[test]
    fn ziv_run_has_zero_inclusion_victims() {
        // Inclusion-victim-heavy mix under LRU: private-cache-resident
        // hot sets (whose LLC copies decay to LRU) plus streaming cores
        // that keep evicting them from the LLC.
        let sys = SystemConfig::scaled();
        let sc = ScaleParams::from_system(&sys);
        let hot = mixes::homogeneous(apps::app_by_name("hotl2").unwrap(), 2, 12_000, 3, sc);
        let stream = mixes::homogeneous(apps::app_by_name("stream").unwrap(), 4, 12_000, 5, sc);
        let mut traces = hot.traces;
        traces.extend(stream.traces.into_iter().skip(2));
        let wl = Workload {
            name: "hot-vs-stream".into(),
            traces,
            attack: None,
        };
        let ziv = RunSpec::new("ZIV", sys.clone()).with_mode(LlcMode::Ziv(ZivProperty::NotInPrC));
        let incl = RunSpec::new("I", sys);
        let rz = run_one(&ziv, &wl);
        let ri = run_one(&incl, &wl);
        assert_eq!(rz.metrics.inclusion_victims, 0);
        assert!(
            ri.metrics.inclusion_victims > 0,
            "circset must create inclusion victims"
        );
    }
}
