//! Aggregation helpers turning grid results into the paper's figure
//! rows: geomean speedups with ranges, and baseline-normalized metric
//! series.

use crate::driver::RunResult;
use crate::spec::GridResult;
use std::collections::HashMap;
use ziv_common::stats::Summary;

/// Per-spec normalized rows: one summary per configuration, normalized
/// against a chosen baseline configuration, aggregated across workloads.
#[derive(Debug, Clone)]
pub struct NormalizedRows {
    /// `(label, summary)` per configuration, in spec order.
    pub rows: Vec<(String, Summary)>,
}

impl NormalizedRows {
    /// Renders the rows as an aligned table.
    pub fn to_table(&self, value_header: &str) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(label, s)| {
                vec![
                    label.clone(),
                    format!("{:.3}", s.gmean),
                    format!("{:.3}", s.min),
                    format!("{:.3}", s.max),
                ]
            })
            .collect();
        ziv_common::stats::render_table(&["config", value_header, "min", "max"], &rows)
    }
}

/// Baseline results keyed by workload index. A sparse map (rather than
/// a parallel vector) keeps the aggregators correct on grids with
/// holes: a failed cell under the fault-isolated campaign runner is
/// simply absent, and every pairing below skips workloads missing from
/// either side.
fn baseline_by_workload(grid: &[GridResult], spec: usize) -> HashMap<usize, &RunResult> {
    grid.iter()
        .filter(|g| g.spec_index == spec)
        .map(|g| (g.workload_index, &g.result))
        .collect()
}

/// Computes weighted-speedup summaries of every spec against the
/// baseline spec (paper figures normalize to `I-LRU` at 256 KB).
///
/// Cells are paired by workload index; a workload missing from either a
/// spec's row or the baseline row (a failed cell) is skipped for that
/// pairing. A spec with no comparable cells gets an all-zero summary.
pub fn speedup_summary(
    grid: &[GridResult],
    spec_count: usize,
    baseline_spec: usize,
) -> NormalizedRows {
    let base = baseline_by_workload(grid, baseline_spec);
    let mut rows = Vec::with_capacity(spec_count);
    for s in 0..spec_count {
        let speedups: Vec<f64> = grid
            .iter()
            .filter(|g| g.spec_index == s)
            .filter_map(|g| base.get(&g.workload_index).map(|b| (&g.result, *b)))
            .map(|(r, b)| {
                debug_assert_eq!(r.workload, b.workload);
                r.weighted_speedup(b)
            })
            .collect();
        let label = grid
            .iter()
            .find(|g| g.spec_index == s)
            .map(|g| g.result.label.clone())
            .unwrap_or_default();
        let summary = Summary::of(&speedups).unwrap_or(Summary {
            gmean: 0.0,
            min: 0.0,
            max: 0.0,
            count: 0,
        });
        rows.push((label, summary));
    }
    NormalizedRows { rows }
}

/// Computes baseline-normalized summaries of an arbitrary metric (LLC
/// misses, L2 misses, inclusion victims...). Workloads where the
/// baseline metric is zero are skipped for that ratio (and counted in
/// the summary's `count`ed denominator only when valid), as are
/// workloads missing from either side (failed cells).
pub fn normalized_metric(
    grid: &[GridResult],
    spec_count: usize,
    baseline_spec: usize,
    metric: impl Fn(&RunResult) -> f64,
) -> NormalizedRows {
    let base = baseline_by_workload(grid, baseline_spec);
    let mut rows = Vec::with_capacity(spec_count);
    for s in 0..spec_count {
        let ratios: Vec<f64> = grid
            .iter()
            .filter(|g| g.spec_index == s)
            .filter_map(|g| base.get(&g.workload_index).map(|b| (&g.result, *b)))
            .filter_map(|(r, b)| {
                let denom = metric(b);
                if denom > 0.0 {
                    // Clamp to a tiny positive value so all-zero
                    // numerators (e.g. ZIV inclusion victims) survive
                    // the geometric mean.
                    Some((metric(r) / denom).max(1e-6))
                } else {
                    None
                }
            })
            .collect();
        let label = grid
            .iter()
            .find(|g| g.spec_index == s)
            .map(|g| g.result.label.clone())
            .unwrap_or_default();
        let summary = Summary::of(&ratios).unwrap_or(Summary {
            gmean: 0.0,
            min: 0.0,
            max: 0.0,
            count: 0,
        });
        rows.push((label, summary));
    }
    NormalizedRows { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_grid, RunSpec};
    use ziv_common::config::SystemConfig;
    use ziv_core::LlcMode;
    use ziv_workloads::{apps, mixes, ScaleParams};

    fn grid() -> (Vec<GridResult>, usize) {
        let sys = SystemConfig::scaled();
        let sc = ScaleParams::from_system(&sys);
        let wls = vec![
            mixes::homogeneous(apps::app_by_name("circset").unwrap(), 2, 2_000, 1, sc),
            mixes::homogeneous(apps::app_by_name("hotl2").unwrap(), 2, 2_000, 1, sc),
        ];
        let specs = vec![
            RunSpec::new("I-LRU", sys.clone()),
            RunSpec::new("NI-LRU", sys).with_mode(LlcMode::NonInclusive),
        ];
        (run_grid(&specs, &wls, 4), specs.len())
    }

    #[test]
    fn baseline_speedup_is_one() {
        let (g, n) = grid();
        let rows = speedup_summary(&g, n, 0);
        assert_eq!(rows.rows.len(), 2);
        assert!((rows.rows[0].1.gmean - 1.0).abs() < 1e-9);
        assert_eq!(rows.rows[0].0, "I-LRU");
    }

    #[test]
    fn normalized_metric_baseline_is_one() {
        let (g, n) = grid();
        let rows = normalized_metric(&g, n, 0, |r| r.metrics.llc_misses as f64);
        assert!((rows.rows[0].1.gmean - 1.0).abs() < 1e-9);
        assert!(rows.rows[1].1.gmean > 0.0);
    }

    #[test]
    fn table_renders() {
        let (g, n) = grid();
        let rows = speedup_summary(&g, n, 0);
        let t = rows.to_table("speedup");
        assert!(t.contains("I-LRU"));
        assert!(t.contains("speedup"));
    }
}
