//! CSV export of experiment grids, for external plotting pipelines
//! (matplotlib / gnuplot / spreadsheets).
//!
//! Six layouts are provided:
//!
//! - [`grid_to_csv`]: one row per `(config, workload)` cell with the
//!   full metric set — the raw data behind every figure.
//! - [`summary_to_csv`]: one row per config with the geomean/min/max
//!   summary (the paper's bar+range format).
//! - [`timeseries_to_csv`]: one row per `(config, workload, epoch)`
//!   with the signed per-epoch counter deltas (the flight recorder's
//!   time-series; DESIGN.md §"Observability").
//! - [`heatmap_to_csv`]: bank × set occupancy grids (one row per
//!   `(config, workload, counter, bank)`).
//! - [`latency_to_csv`]: the latency observatory's attribution matrix
//!   (one row per `(config, workload, core, class)` plus a `core=all`
//!   summary row per class carrying the percentile columns).
//! - [`leakage_to_csv`]: the leakage observatory's per-cell summary
//!   (attacker-observable signal vs noise, probe distinguishability,
//!   SHARP alarm rates; DESIGN.md §"Security evaluation").
//! - [`sampling_to_csv`] / [`validation_to_csv`]: the statistical
//!   sampling engine's per-interval estimates with confidence
//!   intervals, and the sampled-vs-full validation report behind the
//!   CI speedup/accuracy gate (DESIGN.md §"Statistical sampling").

use crate::driver::RunResult;
use crate::report::NormalizedRows;
use crate::spec::GridResult;
use std::io::Write;
use std::path::Path;
use ziv_common::fsutil::create_parent_dirs;
use ziv_common::SimError;
use ziv_core::latency::AccessClass;
use ziv_core::observe::{Observations, CORE_METRICS_COLUMNS, METRICS_COLUMNS};

/// Escapes a CSV field (quotes fields containing commas or quotes).
fn esc(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// The per-cell metric columns exported by [`grid_to_csv`].
pub const GRID_COLUMNS: [&str; 16] = [
    "config",
    "workload",
    "weighted_ipc_sum",
    "instructions",
    "llc_accesses",
    "llc_hits",
    "relocated_hits",
    "llc_misses",
    "l2_misses",
    "inclusion_victims",
    "coherence_invalidations",
    "directory_back_invalidations",
    "relocations",
    "cross_bank_relocations",
    "dram_accesses",
    "relocation_epi_pj",
];

fn cell_row(r: &RunResult) -> Vec<String> {
    let m = &r.metrics;
    let ipc_sum: f64 = r.cores.iter().map(|c| c.ipc()).sum();
    vec![
        r.label.clone(),
        r.workload.clone(),
        format!("{ipc_sum:.6}"),
        r.total_instructions().to_string(),
        m.llc_accesses.to_string(),
        m.llc_hits.to_string(),
        m.relocated_hits.to_string(),
        m.llc_misses.to_string(),
        m.total_l2_misses().to_string(),
        m.inclusion_victims.to_string(),
        m.coherence_invalidations.to_string(),
        m.directory_back_invalidations.to_string(),
        m.relocations.to_string(),
        m.cross_bank_relocations.to_string(),
        m.dram_accesses.to_string(),
        format!("{:.4}", m.relocation_epi_pj()),
    ]
}

/// Writes one CSV row per grid cell.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use ziv_sim::{run_grid, RunSpec, grid_to_csv};
/// use ziv_common::config::SystemConfig;
/// use ziv_workloads::{apps, mixes, ScaleParams};
///
/// let sys = SystemConfig::scaled();
/// let wl = mixes::homogeneous(
///     apps::APPS[4], 2, 500, 1, ScaleParams::from_system(&sys));
/// let grid = run_grid(&[RunSpec::new("I-LRU", sys)], &[wl], 1);
/// let mut out = Vec::new();
/// grid_to_csv(&grid, &mut out).unwrap();
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.starts_with("config,workload,"));
/// assert!(text.contains("I-LRU"));
/// ```
pub fn grid_to_csv<W: Write>(grid: &[GridResult], mut out: W) -> std::io::Result<()> {
    writeln!(out, "{}", GRID_COLUMNS.join(","))?;
    for cell in grid {
        let row = cell_row(&cell.result);
        writeln!(
            out,
            "{}",
            row.iter().map(|f| esc(f)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

/// Writes one CSV row per configuration from a summary
/// ([`crate::speedup_summary`] / [`crate::normalized_metric`] output).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn summary_to_csv<W: Write>(
    rows: &NormalizedRows,
    value_name: &str,
    mut out: W,
) -> std::io::Result<()> {
    writeln!(out, "config,{value_name},min,max,n")?;
    for (label, s) in &rows.rows {
        writeln!(
            out,
            "{},{:.6},{:.6},{:.6},{}",
            esc(label),
            s.gmean,
            s.min,
            s.max,
            s.count
        )?;
    }
    Ok(())
}

/// One cell's observations labelled for CSV export.
#[derive(Debug, Clone, Copy)]
pub struct ObservedCell<'a> {
    /// Configuration label.
    pub config: &'a str,
    /// Workload name.
    pub workload: &'a str,
    /// The cell's flight-recorder payload.
    pub observations: &'a Observations,
}

/// Writes the epoch time-series: one row per `(config, workload,
/// epoch)` carrying the **signed** deltas of every scalar counter
/// (global, then per-core with a derived `c{i}_ipc` column). Column
/// order follows [`METRICS_COLUMNS`] / [`CORE_METRICS_COLUMNS`], so
/// summing a column over a cell's rows reproduces the aggregate
/// `Metrics` value exactly.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn timeseries_to_csv<W: Write>(cells: &[ObservedCell<'_>], mut out: W) -> std::io::Result<()> {
    let cores = cells
        .iter()
        .flat_map(|c| c.observations.epochs.iter())
        .map(|e| e.per_core.len())
        .max()
        .unwrap_or(0);
    let mut header: Vec<String> = ["config", "workload", "epoch", "start_access", "end_access"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    header.extend(METRICS_COLUMNS.iter().map(|c| c.to_string()));
    for c in 0..cores {
        for col in CORE_METRICS_COLUMNS {
            header.push(format!("c{c}_{col}"));
        }
        header.push(format!("c{c}_ipc"));
    }
    writeln!(out, "{}", header.join(","))?;
    for cell in cells {
        for e in &cell.observations.epochs {
            let mut row = vec![
                esc(cell.config),
                esc(cell.workload),
                e.index.to_string(),
                e.start_access.to_string(),
                e.end_access.to_string(),
            ];
            row.extend(e.global.iter().map(|v| v.to_string()));
            for c in 0..cores {
                match e.per_core.get(c) {
                    Some(pc) => {
                        row.extend(pc.iter().map(|v| v.to_string()));
                        row.push(format!("{:.6}", e.core_ipc(c)));
                    }
                    None => {
                        // Cells with fewer cores pad with zero deltas so
                        // every row has the full column set.
                        row.extend(std::iter::repeat_n(
                            "0".to_string(),
                            CORE_METRICS_COLUMNS.len() + 1,
                        ));
                    }
                }
            }
            writeln!(out, "{}", row.join(","))?;
        }
    }
    Ok(())
}

/// The columns exported by [`latency_to_csv`]: identity, the cell's
/// count/cycles, one column per [`ziv_core::latency::LatencyComponent`],
/// and the latency percentiles (filled only on the `core=all` rows,
/// where the per-class histogram lives).
pub const LATENCY_COLUMNS: [&str; 17] = [
    "config",
    "workload",
    "core",
    "class",
    "count",
    "cycles",
    "l1",
    "l2",
    "llc_tag",
    "llc_data",
    "directory",
    "noc",
    "dram",
    "p50",
    "p95",
    "p99",
    "p999",
];

/// Writes the latency attribution matrix: for every cell with an
/// attached [`ziv_core::latency::LatencyReport`], one row per
/// `(core, class)` pair with a
/// nonzero count (component columns sum to `cycles` exactly), then one
/// `core=all` row per class — always emitted, so conservation checks can
/// sum a fixed row set — carrying the class histogram's interpolated
/// p50/p95/p99/p999 (empty when the class saw no accesses).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn latency_to_csv<W: Write>(cells: &[ObservedCell<'_>], mut out: W) -> std::io::Result<()> {
    writeln!(out, "{}", LATENCY_COLUMNS.join(","))?;
    for cell in cells {
        let Some(report) = cell.observations.latency.as_ref() else {
            continue;
        };
        for (core, classes) in report.per_core.iter().enumerate() {
            for (cells_for_class, class) in classes.iter().zip(AccessClass::ALL) {
                if cells_for_class.count == 0 {
                    continue;
                }
                write_latency_row(
                    &mut out,
                    cell,
                    &core.to_string(),
                    class,
                    cells_for_class,
                    None,
                )?;
            }
        }
        for class in AccessClass::ALL {
            let total = report.class_total(class);
            write_latency_row(
                &mut out,
                cell,
                "all",
                class,
                &total,
                Some(report.histogram(class)),
            )?;
        }
    }
    Ok(())
}

fn write_latency_row<W: Write>(
    out: &mut W,
    cell: &ObservedCell<'_>,
    core: &str,
    class: AccessClass,
    cells: &ziv_core::latency::ClassCells,
    hist: Option<&ziv_common::stats::Log2Histogram>,
) -> std::io::Result<()> {
    let mut row = vec![
        esc(cell.config),
        esc(cell.workload),
        core.to_string(),
        class.label().to_string(),
        cells.count.to_string(),
        cells.cycles.to_string(),
    ];
    row.extend(cells.components.iter().map(|v| v.to_string()));
    for q in [0.50, 0.95, 0.99, 0.999] {
        row.push(
            hist.and_then(|h| h.percentile(q))
                .map_or_else(String::new, |p| format!("{p:.3}")),
        );
    }
    writeln!(out, "{}", row.join(","))
}

/// The columns exported by [`leakage_to_csv`].
pub const LEAKAGE_COLUMNS: [&str; 13] = [
    "config",
    "workload",
    "cycles",
    "probed_sets",
    "signal_evictions",
    "noise_evictions",
    "signal_per_mcycle",
    "probe_hits",
    "probe_evictions_seen",
    "probe_eviction_rate",
    "sharp_alarms",
    "sharp_alarms_per_mcycle",
    "total_back_invalidations",
];

/// Writes the leakage summary: one row per cell with an attached
/// [`ziv_core::LeakageReport`] — the attacker-observable **signal**
/// (victim lines back-invalidated out of attacker-probed sets, raw and
/// per million cycles of co-run), the indistinguishable **noise**, the
/// attacker's probe-latency distinguishability split, and SHARP's alarm
/// rate. This is the `leakage.csv` the `attack-eval` campaign exports;
/// a defense with the zero-inclusion-victim property shows
/// `signal_evictions = 0` exactly.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn leakage_to_csv<W: Write>(cells: &[ObservedCell<'_>], mut out: W) -> std::io::Result<()> {
    writeln!(out, "{}", LEAKAGE_COLUMNS.join(","))?;
    for cell in cells {
        let Some(r) = cell.observations.leakage.as_ref() else {
            continue;
        };
        let alarms_per_mcycle = if r.cycles == 0 {
            0.0
        } else {
            r.sharp_alarms as f64 * 1e6 / r.cycles as f64
        };
        let row = vec![
            esc(cell.config),
            esc(cell.workload),
            r.cycles.to_string(),
            r.probed_sets.to_string(),
            r.observable_victim_evictions().to_string(),
            r.noise_evictions().to_string(),
            format!("{:.6}", r.observable_per_mcycle()),
            r.probe_hits().to_string(),
            r.probe_evictions_seen().to_string(),
            format!("{:.6}", r.probe_eviction_rate()),
            r.sharp_alarms.to_string(),
            format!("{alarms_per_mcycle:.6}"),
            r.total_back_invalidations().to_string(),
        ];
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// The columns exported by [`blame_to_csv`].
pub const BLAME_COLUMNS: [&str; 7] = [
    "config",
    "workload",
    "instigator_core",
    "victim_core",
    "victims",
    "refetches",
    "refetch_cycles",
];

/// Writes the forensics blame matrix: for each cell with an attached
/// [`ziv_core::ForensicsReport`], one row per (instigator, victim) core
/// pair — **including all-zero cells**, so a ZIV run's provable absence
/// of inclusion victims shows up as explicit zero rows rather than
/// missing data (the ci.sh conservation gate sums the `victims` column
/// per cell and checks it against the grid's `inclusion_victims`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn blame_to_csv<W: Write>(cells: &[ObservedCell<'_>], mut out: W) -> std::io::Result<()> {
    writeln!(out, "{}", BLAME_COLUMNS.join(","))?;
    for cell in cells {
        let Some(r) = cell.observations.forensics.as_ref() else {
            continue;
        };
        for instigator in 0..r.cores {
            for victim in 0..r.cores {
                let row = [
                    esc(cell.config),
                    esc(cell.workload),
                    instigator.to_string(),
                    victim.to_string(),
                    r.victims(instigator, victim).to_string(),
                    r.refetches(instigator, victim).to_string(),
                    r.refetch_cycles(instigator, victim).to_string(),
                ];
                writeln!(out, "{}", row.join(","))?;
            }
        }
    }
    Ok(())
}

/// Writes the occupancy heatmaps as CSV grids: for each cell and each
/// counter (`accesses`, `evictions`, `relocations`), one row per bank
/// with one column per set.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn heatmap_to_csv<W: Write>(cells: &[ObservedCell<'_>], mut out: W) -> std::io::Result<()> {
    let sets = cells
        .iter()
        .filter_map(|c| c.observations.heatmap.as_ref())
        .map(ziv_core::observe::Heatmap::sets)
        .max()
        .unwrap_or(0);
    let mut header: Vec<String> = ["config", "workload", "counter", "bank"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    header.extend((0..sets).map(|s| format!("set_{s}")));
    writeln!(out, "{}", header.join(","))?;
    for cell in cells {
        let Some(hm) = cell.observations.heatmap.as_ref() else {
            continue;
        };
        let counters = [
            ("accesses", &hm.accesses),
            ("evictions", &hm.evictions),
            ("relocations", &hm.relocations),
        ];
        for (name, grid) in counters {
            for bank in 0..grid.rows() {
                let mut row = vec![
                    esc(cell.config),
                    esc(cell.workload),
                    name.to_string(),
                    bank.to_string(),
                ];
                row.extend((0..sets).map(|s| grid.get(bank, s).to_string()));
                writeln!(out, "{}", row.join(","))?;
            }
        }
    }
    Ok(())
}

/// Writes the epoch time-series CSV to `path`, creating missing parent
/// directories first.
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_timeseries_csv(path: &Path, cells: &[ObservedCell<'_>]) -> Result<(), SimError> {
    create_parent_dirs(path)?;
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create timeseries CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    timeseries_to_csv(cells, &mut w).map_err(|e| SimError::io("write timeseries CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush timeseries CSV", path, e))
}

/// Writes the heatmap CSV to `path`, creating missing parent
/// directories first.
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_heatmap_csv(path: &Path, cells: &[ObservedCell<'_>]) -> Result<(), SimError> {
    create_parent_dirs(path)?;
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create heatmap CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    heatmap_to_csv(cells, &mut w).map_err(|e| SimError::io("write heatmap CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush heatmap CSV", path, e))
}

/// Writes the latency attribution CSV to `path`, creating missing
/// parent directories first.
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_latency_csv(path: &Path, cells: &[ObservedCell<'_>]) -> Result<(), SimError> {
    create_parent_dirs(path)?;
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create latency CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    latency_to_csv(cells, &mut w).map_err(|e| SimError::io("write latency CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush latency CSV", path, e))
}

/// Writes the leakage summary CSV to `path`, creating missing parent
/// directories first.
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_leakage_csv(path: &Path, cells: &[ObservedCell<'_>]) -> Result<(), SimError> {
    create_parent_dirs(path)?;
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create leakage CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    leakage_to_csv(cells, &mut w).map_err(|e| SimError::io("write leakage CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush leakage CSV", path, e))
}

/// Writes the blame matrix CSV to `path`, creating missing parent
/// directories first.
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_blame_csv(path: &Path, cells: &[ObservedCell<'_>]) -> Result<(), SimError> {
    create_parent_dirs(path)?;
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create blame CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    blame_to_csv(cells, &mut w).map_err(|e| SimError::io("write blame CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush blame CSV", path, e))
}

/// Writes the grid CSV to `path`, with the file path attached to any
/// failure (create or write) as a [`SimError::Io`].
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_grid_csv(path: &Path, grid: &[GridResult]) -> Result<(), SimError> {
    create_parent_dirs(path)?;
    let file = std::fs::File::create(path).map_err(|e| SimError::io("create grid CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    grid_to_csv(grid, &mut w).map_err(|e| SimError::io("write grid CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush grid CSV", path, e))
}

/// One sampled cell ready for [`sampling_to_csv`]: the `(config,
/// workload)` naming plus the sampled run whose intervals it exports.
#[derive(Debug)]
pub struct SampledCell<'a> {
    /// Spec label.
    pub config: &'a str,
    /// Workload name.
    pub workload: &'a str,
    /// The cell's sampled run.
    pub sampled: &'a crate::sampling::SampledRun,
}

/// The columns exported by [`sampling_to_csv`]: per-interval estimates
/// plus the cell-level aggregate (mean, confidence interval, coverage)
/// repeated on every row so each line is self-describing.
pub const SAMPLING_COLUMNS: [&str; 16] = [
    "config",
    "workload",
    "interval",
    "start_access",
    "accesses",
    "instructions",
    "cycles",
    "ipc",
    "llc_miss_rate",
    "inclusion_victims",
    "ipc_mean",
    "ipc_ci_low",
    "ipc_ci_high",
    "confidence",
    "simulated_fraction",
    "stop_reason",
];

/// Writes the statistical-sampling export: one row per measured
/// interval of each sampled cell, carrying the interval's own
/// estimators (IPC, LLC miss rate, inclusion victims) and the cell's
/// Student-t aggregate. Cells that closed no full interval (trace
/// shorter than one sampling period) emit no rows.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn sampling_to_csv<W: Write>(cells: &[SampledCell<'_>], mut out: W) -> std::io::Result<()> {
    writeln!(out, "{}", SAMPLING_COLUMNS.join(","))?;
    for cell in cells {
        let run = cell.sampled;
        let (mean, lo, hi) = match run.ipc_ci() {
            Some(ci) => (
                format!("{:.6}", ci.mean),
                format!("{:.6}", ci.low()),
                format!("{:.6}", ci.high()),
            ),
            None => {
                let mean = run
                    .ipc_estimate()
                    .map_or_else(String::new, |m| format!("{m:.6}"));
                (mean, String::new(), String::new())
            }
        };
        for iv in &run.intervals {
            let row = vec![
                esc(cell.config),
                esc(cell.workload),
                iv.index.to_string(),
                iv.start_access.to_string(),
                iv.accesses.to_string(),
                iv.instructions.to_string(),
                iv.cycles.to_string(),
                format!("{:.6}", iv.ipc),
                format!("{:.6}", iv.llc_miss_rate),
                iv.inclusion_victims.to_string(),
                mean.clone(),
                lo.clone(),
                hi.clone(),
                run.profile.plan.confidence.to_string(),
                format!("{:.6}", run.profile.simulated_fraction()),
                run.profile.stop.tag().to_string(),
            ];
            writeln!(out, "{}", row.join(","))?;
        }
    }
    Ok(())
}

/// Writes the per-interval sampling CSV to `path`, creating missing
/// parent directories first.
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_sampling_csv(path: &Path, cells: &[SampledCell<'_>]) -> Result<(), SimError> {
    create_parent_dirs(path)?;
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create sampling CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    sampling_to_csv(cells, &mut w).map_err(|e| SimError::io("write sampling CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush sampling CSV", path, e))
}

/// One row of the sampled-vs-full validation report.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Spec label.
    pub config: String,
    /// Workload name.
    pub workload: String,
    /// Aggregate IPC of the full (unsampled) run:
    /// `total instructions / final cycle window`.
    pub full_ipc: f64,
    /// The sampled estimator's mean per-interval IPC.
    pub sampled_ipc: f64,
    /// The sampled estimator's confidence interval, when ≥ 2 intervals
    /// closed.
    pub ipc_ci: Option<ziv_common::stats::ConfidenceInterval>,
    /// Full-run wall clock, milliseconds. 0 when the full result came
    /// from the ledger cache and was never timed this run.
    pub full_ms: f64,
    /// Sampled-run wall clock, milliseconds.
    pub sampled_ms: f64,
}

impl ValidationRow {
    /// Absolute IPC estimation error.
    pub fn abs_error(&self) -> f64 {
        (self.sampled_ipc - self.full_ipc).abs()
    }

    /// Relative IPC estimation error (0 when the full IPC is 0).
    pub fn rel_error(&self) -> f64 {
        if self.full_ipc == 0.0 {
            0.0
        } else {
            self.abs_error() / self.full_ipc
        }
    }

    /// Whether the full-run IPC lies inside the sampled estimate's
    /// confidence interval. `false` when no interval was reported.
    pub fn within_ci(&self) -> bool {
        self.ipc_ci
            .as_ref()
            .is_some_and(|ci| ci.low() <= self.full_ipc && self.full_ipc <= ci.high())
    }

    /// Wall-clock speedup of the sampled run over the full run (0 when
    /// either side was not timed).
    pub fn speedup(&self) -> f64 {
        if self.full_ms <= 0.0 || self.sampled_ms <= 0.0 {
            0.0
        } else {
            self.full_ms / self.sampled_ms
        }
    }
}

/// The columns exported by [`validation_to_csv`].
pub const VALIDATION_COLUMNS: [&str; 12] = [
    "config",
    "workload",
    "full_ipc",
    "sampled_ipc",
    "abs_error",
    "rel_error",
    "ci_low",
    "ci_high",
    "within_ci",
    "full_ms",
    "sampled_ms",
    "speedup",
];

/// Writes the sampled-vs-full validation report: one row per cell
/// comparing the sampled IPC estimate (and its confidence interval)
/// against the full run's aggregate IPC, plus wall-clock timings for
/// the speedup gate.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn validation_to_csv<W: Write>(rows: &[ValidationRow], mut out: W) -> std::io::Result<()> {
    writeln!(out, "{}", VALIDATION_COLUMNS.join(","))?;
    for r in rows {
        let (lo, hi) = match &r.ipc_ci {
            Some(ci) => (format!("{:.6}", ci.low()), format!("{:.6}", ci.high())),
            None => (String::new(), String::new()),
        };
        let row = vec![
            esc(&r.config),
            esc(&r.workload),
            format!("{:.6}", r.full_ipc),
            format!("{:.6}", r.sampled_ipc),
            format!("{:.6}", r.abs_error()),
            format!("{:.6}", r.rel_error()),
            lo,
            hi,
            if r.within_ci() { "1" } else { "0" }.to_string(),
            format!("{:.3}", r.full_ms),
            format!("{:.3}", r.sampled_ms),
            format!("{:.3}", r.speedup()),
        ];
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Writes the validation CSV to `path`, creating missing parent
/// directories first.
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_validation_csv(path: &Path, rows: &[ValidationRow]) -> Result<(), SimError> {
    create_parent_dirs(path)?;
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create validation CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    validation_to_csv(rows, &mut w).map_err(|e| SimError::io("write validation CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush validation CSV", path, e))
}

/// Writes the summary CSV to `path`, with the file path attached to any
/// failure as a [`SimError::Io`].
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_summary_csv(
    path: &Path,
    rows: &NormalizedRows,
    value_name: &str,
) -> Result<(), SimError> {
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create summary CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    summary_to_csv(rows, value_name, &mut w)
        .map_err(|e| SimError::io("write summary CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush summary CSV", path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_grid, RunSpec};
    use ziv_common::config::SystemConfig;
    use ziv_workloads::{apps, mixes, ScaleParams};

    fn small_grid() -> Vec<GridResult> {
        let sys = SystemConfig::scaled();
        let wl = mixes::homogeneous(apps::APPS[4], 2, 500, 1, ScaleParams::from_system(&sys));
        run_grid(
            &[
                RunSpec::new("I-LRU", sys.clone()),
                RunSpec::new("with,comma", sys),
            ],
            &[wl],
            1,
        )
    }

    #[test]
    fn grid_csv_has_header_and_rows() {
        let grid = small_grid();
        let mut out = Vec::new();
        grid_to_csv(&grid, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].split(',').count(), GRID_COLUMNS.len());
        assert!(lines[1].starts_with("I-LRU,"));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let grid = small_grid();
        let mut out = Vec::new();
        grid_to_csv(&grid, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"with,comma\""));
    }

    #[test]
    fn summary_csv_round_trips_values() {
        let grid = small_grid();
        let rows = crate::report::speedup_summary(&grid, 2, 0);
        let mut out = Vec::new();
        summary_to_csv(&rows, "speedup", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("config,speedup,min,max,n"));
        assert!(
            text.contains("1.000000"),
            "baseline speedup is exactly 1: {text}"
        );
    }

    #[test]
    fn quote_escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    fn synthetic_observations() -> Observations {
        use ziv_core::observe::{EpochSample, Heatmap};
        let mut heatmap = Heatmap::new(2, 4);
        heatmap.accesses.add(0, 1, 5);
        heatmap.evictions.add(1, 3, 2);
        heatmap.relocations.add(1, 0, 1);
        Observations {
            epochs: vec![EpochSample {
                index: 0,
                start_access: 0,
                end_access: 10,
                global: vec![0; METRICS_COLUMNS.len()],
                per_core: vec![vec![1; CORE_METRICS_COLUMNS.len()]],
            }],
            events: Vec::new(),
            events_recorded: 0,
            heatmap: Some(heatmap),
            latency: None,
            leakage: None,
            forensics: None,
            profile: None,
            dir_slice_occupancy: Vec::new(),
        }
    }

    #[test]
    fn leakage_csv_emits_one_row_per_reporting_cell() {
        use ziv_common::CoreId;
        use ziv_core::LeakageObservatory;
        let mut leak = LeakageObservatory::new(2, 2, 4, &[0], &[1], &[1]);
        // Line 1 homes at (bank 1, set 0) — the probed set.
        leak.note_back_invalidation(CoreId::new(1), ziv_common::Addr::new(1 << 6).line());
        leak.note_sharp_alarm();
        let mut report = leak.finish();
        report.cycles = 1_000_000;
        let mut with_leak = synthetic_observations();
        with_leak.leakage = Some(report);
        let without = synthetic_observations();
        let cells = [
            ObservedCell {
                config: "I-LRU",
                workload: "attack-pp",
                observations: &with_leak,
            },
            ObservedCell {
                config: "ZIV",
                workload: "attack-pp",
                observations: &without,
            },
        ];
        let mut out = Vec::new();
        leakage_to_csv(&cells, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], LEAKAGE_COLUMNS.join(","));
        assert_eq!(lines.len(), 2, "cells without a report are skipped");
        assert!(lines[1].starts_with("I-LRU,attack-pp,1000000,1,1,0,1.000000,"));
        assert!(lines[1].contains(",1,1.000000,1"), "sharp alarm columns");
    }

    #[test]
    fn blame_csv_emits_full_matrix_including_zero_rows() {
        use ziv_common::{CoreId, LineAddr};
        use ziv_core::{ChainKind, ForensicsObservatory, VictimReason};
        let mut f = ForensicsObservatory::new(2, 2, 4);
        f.open_chain(
            ChainKind::Inclusive,
            CoreId::new(0),
            7,
            70,
            LineAddr::new(0x33),
            VictimReason::Baseline,
        );
        f.chain_victim(CoreId::new(1));
        f.close_chain();
        let mut with_forensics = synthetic_observations();
        with_forensics.forensics = Some(f.finish());
        let without = synthetic_observations();
        let cells = [
            ObservedCell {
                config: "I-LRU",
                workload: "mix0",
                observations: &with_forensics,
            },
            ObservedCell {
                config: "ZIV",
                workload: "mix0",
                observations: &without,
            },
        ];
        let mut out = Vec::new();
        blame_to_csv(&cells, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], BLAME_COLUMNS.join(","));
        // 2×2 matrix ⇒ 4 rows, zeros included; the report-less cell is
        // skipped entirely.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1], "I-LRU,mix0,0,0,0,0,0");
        assert_eq!(lines[2], "I-LRU,mix0,0,1,1,0,0");
        assert_eq!(lines[3], "I-LRU,mix0,1,0,0,0,0");
        assert_eq!(lines[4], "I-LRU,mix0,1,1,0,0,0");
    }

    #[test]
    fn latency_csv_emits_per_core_and_all_rows() {
        use ziv_common::CoreId;
        use ziv_core::latency::{LatencyBreakdown, LatencyObservatory};
        let mut lat = LatencyObservatory::new(2);
        lat.record(
            CoreId::new(0),
            AccessClass::L1Hit,
            &LatencyBreakdown {
                l1: 3,
                ..LatencyBreakdown::default()
            },
        );
        lat.record(
            CoreId::new(1),
            AccessClass::LlcMissDram,
            &LatencyBreakdown {
                noc: 8,
                dram: 120,
                ..LatencyBreakdown::default()
            },
        );
        let mut obs = synthetic_observations();
        obs.latency = Some(lat.finish());
        let cells = [ObservedCell {
            config: "I-LRU",
            workload: "w",
            observations: &obs,
        }];
        let mut out = Vec::new();
        latency_to_csv(&cells, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], LATENCY_COLUMNS.join(","));
        // 2 nonzero per-core rows + one `all` row per class.
        assert_eq!(lines.len(), 1 + 2 + AccessClass::ALL.len());
        assert!(lines.contains(&"I-LRU,w,0,l1_hit,1,3,3,0,0,0,0,0,0,,,,"));
        let dram_all = lines
            .iter()
            .find(|l| l.starts_with("I-LRU,w,all,llc_miss_dram,"))
            .expect("all-row present");
        assert!(dram_all.contains(",1,128,0,0,0,0,0,8,120,"));
        // Percentiles are filled on `all` rows with traffic...
        assert!(!dram_all.ends_with(",,,,"));
        // ...and empty on classes that saw none.
        assert!(lines.iter().any(
            |l| l.starts_with("I-LRU,w,all,inclusion_victim_refetch,0,0,") && l.ends_with(",,,,")
        ));
    }

    #[test]
    fn timeseries_csv_has_full_column_set() {
        let obs = synthetic_observations();
        let cells = [ObservedCell {
            config: "I-LRU",
            workload: "w",
            observations: &obs,
        }];
        let mut out = Vec::new();
        timeseries_to_csv(&cells, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let expected = 5 + METRICS_COLUMNS.len() + CORE_METRICS_COLUMNS.len() + 1;
        assert_eq!(lines[0].split(',').count(), expected);
        assert_eq!(lines[1].split(',').count(), expected);
        assert!(lines[0].ends_with("c0_ipc"));
        assert!(lines[1].starts_with("I-LRU,w,0,0,10,"));
    }

    #[test]
    fn heatmap_csv_grids_by_counter_and_bank() {
        let obs = synthetic_observations();
        let cells = [ObservedCell {
            config: "Z",
            workload: "w",
            observations: &obs,
        }];
        let mut out = Vec::new();
        heatmap_to_csv(&cells, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Header + 3 counters × 2 banks.
        assert_eq!(lines.len(), 1 + 3 * 2);
        assert_eq!(
            lines[0],
            "config,workload,counter,bank,set_0,set_1,set_2,set_3"
        );
        assert!(lines.contains(&"Z,w,accesses,0,0,5,0,0"));
        assert!(lines.contains(&"Z,w,evictions,1,0,0,0,2"));
        assert!(lines.contains(&"Z,w,relocations,1,1,0,0,0"));
    }
}
