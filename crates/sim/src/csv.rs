//! CSV export of experiment grids, for external plotting pipelines
//! (matplotlib / gnuplot / spreadsheets).
//!
//! Two layouts are provided:
//!
//! - [`grid_to_csv`]: one row per `(config, workload)` cell with the
//!   full metric set — the raw data behind every figure.
//! - [`summary_to_csv`]: one row per config with the geomean/min/max
//!   summary (the paper's bar+range format).

use crate::driver::RunResult;
use crate::report::NormalizedRows;
use crate::spec::GridResult;
use std::io::Write;
use std::path::Path;
use ziv_common::SimError;

/// Escapes a CSV field (quotes fields containing commas or quotes).
fn esc(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// The per-cell metric columns exported by [`grid_to_csv`].
pub const GRID_COLUMNS: [&str; 16] = [
    "config",
    "workload",
    "weighted_ipc_sum",
    "instructions",
    "llc_accesses",
    "llc_hits",
    "relocated_hits",
    "llc_misses",
    "l2_misses",
    "inclusion_victims",
    "coherence_invalidations",
    "directory_back_invalidations",
    "relocations",
    "cross_bank_relocations",
    "dram_accesses",
    "relocation_epi_pj",
];

fn cell_row(r: &RunResult) -> Vec<String> {
    let m = &r.metrics;
    let ipc_sum: f64 = r.cores.iter().map(|c| c.ipc()).sum();
    vec![
        r.label.clone(),
        r.workload.clone(),
        format!("{ipc_sum:.6}"),
        r.total_instructions().to_string(),
        m.llc_accesses.to_string(),
        m.llc_hits.to_string(),
        m.relocated_hits.to_string(),
        m.llc_misses.to_string(),
        m.total_l2_misses().to_string(),
        m.inclusion_victims.to_string(),
        m.coherence_invalidations.to_string(),
        m.directory_back_invalidations.to_string(),
        m.relocations.to_string(),
        m.cross_bank_relocations.to_string(),
        m.dram_accesses.to_string(),
        format!("{:.4}", m.relocation_epi_pj()),
    ]
}

/// Writes one CSV row per grid cell.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use ziv_sim::{run_grid, RunSpec, grid_to_csv};
/// use ziv_common::config::SystemConfig;
/// use ziv_workloads::{apps, mixes, ScaleParams};
///
/// let sys = SystemConfig::scaled();
/// let wl = mixes::homogeneous(
///     apps::APPS[4], 2, 500, 1, ScaleParams::from_system(&sys));
/// let grid = run_grid(&[RunSpec::new("I-LRU", sys)], &[wl], 1);
/// let mut out = Vec::new();
/// grid_to_csv(&grid, &mut out).unwrap();
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.starts_with("config,workload,"));
/// assert!(text.contains("I-LRU"));
/// ```
pub fn grid_to_csv<W: Write>(grid: &[GridResult], mut out: W) -> std::io::Result<()> {
    writeln!(out, "{}", GRID_COLUMNS.join(","))?;
    for cell in grid {
        let row = cell_row(&cell.result);
        writeln!(
            out,
            "{}",
            row.iter().map(|f| esc(f)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

/// Writes one CSV row per configuration from a summary
/// ([`crate::speedup_summary`] / [`crate::normalized_metric`] output).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn summary_to_csv<W: Write>(
    rows: &NormalizedRows,
    value_name: &str,
    mut out: W,
) -> std::io::Result<()> {
    writeln!(out, "config,{value_name},min,max,n")?;
    for (label, s) in &rows.rows {
        writeln!(
            out,
            "{},{:.6},{:.6},{:.6},{}",
            esc(label),
            s.gmean,
            s.min,
            s.max,
            s.count
        )?;
    }
    Ok(())
}

/// Writes the grid CSV to `path`, with the file path attached to any
/// failure (create or write) as a [`SimError::Io`].
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_grid_csv(path: &Path, grid: &[GridResult]) -> Result<(), SimError> {
    let file = std::fs::File::create(path).map_err(|e| SimError::io("create grid CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    grid_to_csv(grid, &mut w).map_err(|e| SimError::io("write grid CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush grid CSV", path, e))
}

/// Writes the summary CSV to `path`, with the file path attached to any
/// failure as a [`SimError::Io`].
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_summary_csv(
    path: &Path,
    rows: &NormalizedRows,
    value_name: &str,
) -> Result<(), SimError> {
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create summary CSV", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    summary_to_csv(rows, value_name, &mut w)
        .map_err(|e| SimError::io("write summary CSV", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush summary CSV", path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_grid, RunSpec};
    use ziv_common::config::SystemConfig;
    use ziv_workloads::{apps, mixes, ScaleParams};

    fn small_grid() -> Vec<GridResult> {
        let sys = SystemConfig::scaled();
        let wl = mixes::homogeneous(apps::APPS[4], 2, 500, 1, ScaleParams::from_system(&sys));
        run_grid(
            &[
                RunSpec::new("I-LRU", sys.clone()),
                RunSpec::new("with,comma", sys),
            ],
            &[wl],
            1,
        )
    }

    #[test]
    fn grid_csv_has_header_and_rows() {
        let grid = small_grid();
        let mut out = Vec::new();
        grid_to_csv(&grid, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].split(',').count(), GRID_COLUMNS.len());
        assert!(lines[1].starts_with("I-LRU,"));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let grid = small_grid();
        let mut out = Vec::new();
        grid_to_csv(&grid, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"with,comma\""));
    }

    #[test]
    fn summary_csv_round_trips_values() {
        let grid = small_grid();
        let rows = crate::report::speedup_summary(&grid, 2, 0);
        let mut out = Vec::new();
        summary_to_csv(&rows, "speedup", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("config,speedup,min,max,n"));
        assert!(
            text.contains("1.000000"),
            "baseline speedup is exactly 1: {text}"
        );
    }

    #[test]
    fn quote_escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
