//! Run specifications (Send-able configuration data) and the parallel
//! experiment grid runner.

use crate::driver::{run_one, RunResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use ziv_common::config::SystemConfig;
use ziv_core::{HierarchyConfig, LlcMode};
use ziv_directory::DirectoryMode;
use ziv_replacement::{PolicyKind, PrecomputedFuture};
use ziv_workloads::Workload;

/// A complete, thread-shippable description of one configuration.
/// (The non-Send pieces — the MIN oracle's shared future knowledge —
/// are constructed inside the worker thread.)
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Label used in figure output (e.g. `"I-Hawkeye"`).
    pub label: String,
    /// Machine configuration.
    pub system: SystemConfig,
    /// LLC mode.
    pub mode: LlcMode,
    /// Baseline replacement policy.
    pub policy: PolicyKind,
    /// Directory mode.
    pub dir_mode: DirectoryMode,
    /// Seed.
    pub seed: u64,
    /// CHAR tuning override (the dynamic-threshold ablation).
    pub char_cfg: Option<ziv_char::CharConfig>,
    /// Optional stride prefetching (the prefetch × inclusion extension).
    pub prefetch: Option<ziv_core::prefetch::PrefetchConfig>,
}

impl RunSpec {
    /// A new spec with inclusive-LRU defaults.
    pub fn new(label: impl Into<String>, system: SystemConfig) -> Self {
        RunSpec {
            label: label.into(),
            system,
            mode: LlcMode::Inclusive,
            policy: PolicyKind::Lru,
            dir_mode: DirectoryMode::Mesi,
            seed: 0x5eed,
            char_cfg: None,
            prefetch: None,
        }
    }

    /// Sets the LLC mode.
    pub fn with_mode(mut self, mode: LlcMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the replacement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the directory mode.
    pub fn with_dir_mode(mut self, dir_mode: DirectoryMode) -> Self {
        self.dir_mode = dir_mode;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides CHAR tuning (the threshold ablation bench).
    pub fn with_char(mut self, char_cfg: ziv_char::CharConfig) -> Self {
        self.char_cfg = Some(char_cfg);
        self
    }

    /// Enables stride prefetching.
    pub fn with_prefetch(mut self, prefetch: ziv_core::prefetch::PrefetchConfig) -> Self {
        self.prefetch = Some(prefetch);
        self
    }

    /// Builds the hierarchy configuration, constructing the MIN oracle's
    /// future knowledge from the workload when needed. The global stream
    /// position of record `i` of core `c` is `i × ncores + c` — the same
    /// policy-independent round-robin interleaving the driver passes to
    /// [`ziv_core::CacheHierarchy::access`] (the paper's footnote 2).
    pub fn build_hierarchy_config(&self, workload: &Workload) -> HierarchyConfig {
        let mut cfg = HierarchyConfig::new(self.system.clone())
            .with_mode(self.mode)
            .with_policy(self.policy)
            .with_dir_mode(self.dir_mode)
            .with_seed(self.seed);
        if let Some(cc) = self.char_cfg {
            cfg = cfg.with_char(cc);
        }
        if let Some(pf) = self.prefetch {
            cfg = cfg.with_prefetch(pf);
        }
        if self.policy == PolicyKind::Min {
            let ncores = workload.cores() as u64;
            let stream = workload.traces.iter().enumerate().flat_map(|(c, t)| {
                t.records
                    .iter()
                    .enumerate()
                    .map(move |(i, r)| (i as u64 * ncores + c as u64, r.addr.line()))
            });
            cfg = cfg.with_future(std::rc::Rc::new(PrecomputedFuture::from_stream(stream)));
        }
        cfg
    }
}

/// One cell of an experiment grid: configuration × workload.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Index of the spec in the grid's spec list.
    pub spec_index: usize,
    /// Index of the workload in the grid's workload list.
    pub workload_index: usize,
    /// The run's results.
    pub result: RunResult,
}

/// Runs every `spec × workload` combination, fanning out across OS
/// threads, and returns the results indexed by `(spec, workload)`.
///
/// Deterministic: results are identical regardless of thread count.
pub fn run_grid(specs: &[RunSpec], workloads: &[Workload], threads: usize) -> Vec<GridResult> {
    let total = specs.len() * workloads.len();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<GridResult>> = Mutex::new(Vec::with_capacity(total));
    let workers = threads.max(1).min(total.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= total {
                    break;
                }
                let spec_index = idx / workloads.len();
                let workload_index = idx % workloads.len();
                let result = run_one(&specs[spec_index], &workloads[workload_index]);
                results.lock().unwrap().push(GridResult { spec_index, workload_index, result });
            });
        }
    });

    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|g| (g.spec_index, g.workload_index));
    out
}

/// Default worker-thread count for experiment grids.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_workloads::{apps, mixes, ScaleParams};

    fn workloads() -> Vec<Workload> {
        let sys = SystemConfig::scaled();
        let sc = ScaleParams::from_system(&sys);
        vec![
            mixes::homogeneous(apps::APPS[4], 2, 1_000, 1, sc),
            mixes::homogeneous(apps::APPS[0], 2, 1_000, 1, sc),
        ]
    }

    #[test]
    fn grid_covers_all_cells_in_order() {
        let sys = SystemConfig::scaled();
        let specs = vec![
            RunSpec::new("I-LRU", sys.clone()),
            RunSpec::new("NI-LRU", sys).with_mode(LlcMode::NonInclusive),
        ];
        let wls = workloads();
        let grid = run_grid(&specs, &wls, 4);
        assert_eq!(grid.len(), 4);
        let cells: Vec<_> = grid.iter().map(|g| (g.spec_index, g.workload_index)).collect();
        assert_eq!(cells, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn grid_is_deterministic_across_thread_counts() {
        let sys = SystemConfig::scaled();
        let specs = vec![RunSpec::new("I-LRU", sys)];
        let wls = workloads();
        let a = run_grid(&specs, &wls, 1);
        let b = run_grid(&specs, &wls, 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result.metrics.llc_misses, y.result.metrics.llc_misses);
            assert_eq!(x.result.cores[0].cycles, y.result.cores[0].cycles);
        }
    }
}
