//! Run specifications (Send-able configuration data) and the parallel
//! experiment grid runner.

use crate::driver::{run_one_traced, RunOptions, RunResult};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use ziv_common::config::SystemConfig;
use ziv_common::SimError;
use ziv_core::observe::Observations;
use ziv_core::{FaultInjection, HierarchyConfig, LlcMode};
use ziv_directory::DirectoryMode;
use ziv_replacement::{PolicyKind, PrecomputedFuture};
use ziv_workloads::Workload;

/// A complete, thread-shippable description of one configuration.
/// (The non-Send pieces — the MIN oracle's shared future knowledge —
/// are constructed inside the worker thread.)
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Label used in figure output (e.g. `"I-Hawkeye"`).
    pub label: String,
    /// Machine configuration.
    pub system: SystemConfig,
    /// LLC mode.
    pub mode: LlcMode,
    /// Baseline replacement policy.
    pub policy: PolicyKind,
    /// Directory mode.
    pub dir_mode: DirectoryMode,
    /// Seed.
    pub seed: u64,
    /// CHAR tuning override (the dynamic-threshold ablation).
    pub char_cfg: Option<ziv_char::CharConfig>,
    /// Optional stride prefetching (the prefetch × inclusion extension).
    pub prefetch: Option<ziv_core::prefetch::PrefetchConfig>,
    /// Optional deliberate fault injection (mutation tests, campaign
    /// fault-isolation tests). Participates in the cell digest when set,
    /// so a faulted cell never aliases a healthy cached result.
    pub fault: Option<FaultInjection>,
}

impl RunSpec {
    /// A new spec with inclusive-LRU defaults.
    pub fn new(label: impl Into<String>, system: SystemConfig) -> Self {
        RunSpec {
            label: label.into(),
            system,
            mode: LlcMode::Inclusive,
            policy: PolicyKind::Lru,
            dir_mode: DirectoryMode::Mesi,
            seed: 0x5eed,
            char_cfg: None,
            prefetch: None,
            fault: None,
        }
    }

    /// Sets the LLC mode.
    pub fn with_mode(mut self, mode: LlcMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the replacement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the directory mode.
    pub fn with_dir_mode(mut self, dir_mode: DirectoryMode) -> Self {
        self.dir_mode = dir_mode;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides CHAR tuning (the threshold ablation bench).
    pub fn with_char(mut self, char_cfg: ziv_char::CharConfig) -> Self {
        self.char_cfg = Some(char_cfg);
        self
    }

    /// Enables stride prefetching.
    pub fn with_prefetch(mut self, prefetch: ziv_core::prefetch::PrefetchConfig) -> Self {
        self.prefetch = Some(prefetch);
        self
    }

    /// Arms a deliberate fault (see [`FaultInjection`]).
    pub fn with_fault(mut self, fault: FaultInjection) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Feeds every simulation-determining field into a stable content
    /// digest — the campaign harness's cell addressing.
    ///
    /// The `label` is presentation-only and deliberately **excluded**:
    /// relabeling a configuration must not invalidate its cached
    /// results. Enum-valued fields (mode, policy, directory mode) and
    /// the optional CHAR/prefetch overrides are digested through their
    /// `Debug` renderings, which capture every variant and parameter;
    /// renaming a variant in source therefore invalidates the cache,
    /// which is the safe direction to fail in.
    pub fn digest_into(&self, h: &mut ziv_common::Fnv1a) {
        self.system.digest_into(h);
        h.write_str(&format!("{:?}", self.mode));
        h.write_str(&format!("{:?}", self.policy));
        h.write_str(&format!("{:?}", self.dir_mode));
        h.write_u64(self.seed);
        match &self.char_cfg {
            Some(cc) => h.write_str(&format!("{cc:?}")),
            None => h.write_u64(0),
        }
        match &self.prefetch {
            Some(pf) => h.write_str(&format!("{pf:?}")),
            None => h.write_u64(0),
        }
        // Appended after the original fields, and only when set: every
        // fault-free spec keeps the digest it had before fault injection
        // existed, so cached ledgers stay valid.
        if let Some(fault) = &self.fault {
            h.write_str(&format!("{fault:?}"));
        }
    }

    /// Builds the hierarchy configuration, constructing the MIN oracle's
    /// future knowledge from the workload when needed. The global stream
    /// position of record `i` of core `c` is `i × ncores + c` — the same
    /// policy-independent round-robin interleaving the driver passes to
    /// [`ziv_core::CacheHierarchy::access`] (the paper's footnote 2).
    pub fn build_hierarchy_config(&self, workload: &Workload) -> HierarchyConfig {
        let mut cfg = HierarchyConfig::new(self.system.clone())
            .with_mode(self.mode)
            .with_policy(self.policy)
            .with_dir_mode(self.dir_mode)
            .with_seed(self.seed);
        if let Some(cc) = self.char_cfg {
            cfg = cfg.with_char(cc);
        }
        if let Some(pf) = self.prefetch {
            cfg = cfg.with_prefetch(pf);
        }
        if let Some(fault) = self.fault {
            cfg = cfg.with_fault(fault);
        }
        if self.policy == PolicyKind::Min {
            let ncores = workload.cores() as u64;
            let stream = workload.traces.iter().enumerate().flat_map(|(c, t)| {
                t.records
                    .iter()
                    .enumerate()
                    .map(move |(i, r)| (i as u64 * ncores + c as u64, r.addr.line()))
            });
            cfg = cfg.with_future(std::rc::Rc::new(PrecomputedFuture::from_stream(stream)));
        }
        cfg
    }
}

/// One cell of an experiment grid: configuration × workload.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Index of the spec in the grid's spec list.
    pub spec_index: usize,
    /// Index of the workload in the grid's workload list.
    pub workload_index: usize,
    /// The run's results.
    pub result: RunResult,
}

/// Observer of cell-level experiment execution, called from worker
/// threads as cells start and finish. The campaign harness hooks this
/// to append finished cells to its result ledger and drive progress
/// telemetry; `run_grid` itself uses the no-op [`NoopObserver`].
pub trait GridObserver: Sync {
    /// A worker picked up the cell `(spec_index, workload_index)`.
    fn cell_started(&self, spec_index: usize, workload_index: usize) {
        let _ = (spec_index, workload_index);
    }

    /// A worker finished a cell; `wall` is the cell's wall-clock cost.
    fn cell_finished(
        &self,
        spec_index: usize,
        workload_index: usize,
        result: &RunResult,
        wall: std::time::Duration,
    ) {
        let _ = (spec_index, workload_index, result, wall);
    }

    /// A cell failed (audit violation, watchdog trip). Only reachable
    /// through [`run_cells_checked`]; the plain [`run_cells`] path runs
    /// with auditing off and cannot fail.
    fn cell_failed(
        &self,
        spec_index: usize,
        workload_index: usize,
        error: &SimError,
        wall: std::time::Duration,
    ) {
        let _ = (spec_index, workload_index, error, wall);
    }

    /// Polled by workers before claiming the next cell; return `true` to
    /// stop the grid early (the campaign harness's `--strict` fail-fast).
    /// Cells already in flight still complete.
    fn should_abort(&self) -> bool {
        false
    }
}

/// The do-nothing [`GridObserver`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl GridObserver for NoopObserver {}

/// Runs the listed `(spec_index, workload_index)` cells, fanning out
/// across OS threads, and returns their results sorted by
/// `(spec_index, workload_index)`.
///
/// This is the cache-aware entry point: a caller that already holds
/// results for some cells (the campaign harness's content-addressed
/// ledger) passes only the missing cells. Deterministic: per-cell
/// results are identical regardless of thread count or cell order.
///
/// # Panics
///
/// Panics if a cell index is out of range for `specs` / `workloads`.
pub fn run_cells(
    specs: &[RunSpec],
    workloads: &[Workload],
    cells: &[(usize, usize)],
    threads: usize,
    observer: &dyn GridObserver,
) -> Vec<GridResult> {
    run_cells_checked(
        specs,
        workloads,
        cells,
        threads,
        &RunOptions::default(),
        observer,
    )
    .into_iter()
    .map(|c| {
        let result = c
            .outcome
            .expect("a run with auditing and watchdog disabled is infallible");
        GridResult {
            spec_index: c.spec_index,
            workload_index: c.workload_index,
            result,
        }
    })
    .collect()
}

/// One cell's outcome under the fault-isolated runner: the result, or
/// the typed error that felled it.
#[derive(Debug)]
pub struct CellRun {
    /// Index of the spec in the grid's spec list.
    pub spec_index: usize,
    /// Index of the workload in the grid's workload list.
    pub workload_index: usize,
    /// The run's results, or its failure.
    pub outcome: Result<RunResult, SimError>,
    /// The cell's flight-recorder payload when `opts.observe` enabled
    /// anything; present for failed cells too (the events leading up to
    /// the violation).
    pub observations: Option<Box<Observations>>,
}

/// Fault-isolated variant of [`run_cells`]: each cell runs under
/// `opts` (audit cadence + watchdog budget) and a failing cell is
/// returned as an `Err` outcome — it never takes down its worker thread
/// or the other cells. Workers poll [`GridObserver::should_abort`]
/// between cells, so an observer can implement fail-fast.
///
/// Results are sorted by `(spec_index, workload_index)`; aborted cells
/// are simply absent.
///
/// # Panics
///
/// Panics if a cell index is out of range for `specs` / `workloads`.
pub fn run_cells_checked(
    specs: &[RunSpec],
    workloads: &[Workload],
    cells: &[(usize, usize)],
    threads: usize,
    opts: &RunOptions,
    observer: &dyn GridObserver,
) -> Vec<CellRun> {
    for &(s, w) in cells {
        assert!(s < specs.len(), "spec index {s} out of range");
        assert!(w < workloads.len(), "workload index {w} out of range");
    }
    let total = cells.len();
    let next = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let results: Mutex<Vec<CellRun>> = Mutex::new(Vec::with_capacity(total));
    let workers = threads.max(1).min(total.max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if aborted.load(Ordering::Relaxed) || observer.should_abort() {
                    aborted.store(true, Ordering::Relaxed);
                    break;
                }
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= total {
                    break;
                }
                let (spec_index, workload_index) = cells[idx];
                observer.cell_started(spec_index, workload_index);
                let started = std::time::Instant::now();
                let (outcome, observations) =
                    run_one_traced(&specs[spec_index], &workloads[workload_index], opts);
                match &outcome {
                    Ok(result) => observer.cell_finished(
                        spec_index,
                        workload_index,
                        result,
                        started.elapsed(),
                    ),
                    Err(error) => {
                        observer.cell_failed(spec_index, workload_index, error, started.elapsed())
                    }
                }
                results.lock().unwrap().push(CellRun {
                    spec_index,
                    workload_index,
                    outcome,
                    observations,
                });
            });
        }
    });

    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|g| (g.spec_index, g.workload_index));
    out
}

/// Runs every `spec × workload` combination, fanning out across OS
/// threads, and returns the results indexed by `(spec, workload)`.
///
/// Deterministic: results are identical regardless of thread count.
pub fn run_grid(specs: &[RunSpec], workloads: &[Workload], threads: usize) -> Vec<GridResult> {
    let cells: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..workloads.len()).map(move |w| (s, w)))
        .collect();
    run_cells(specs, workloads, &cells, threads, &NoopObserver)
}

/// Default worker-thread count for experiment grids.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_workloads::{apps, mixes, ScaleParams};

    fn workloads() -> Vec<Workload> {
        let sys = SystemConfig::scaled();
        let sc = ScaleParams::from_system(&sys);
        vec![
            mixes::homogeneous(apps::APPS[4], 2, 1_000, 1, sc),
            mixes::homogeneous(apps::APPS[0], 2, 1_000, 1, sc),
        ]
    }

    #[test]
    fn grid_covers_all_cells_in_order() {
        let sys = SystemConfig::scaled();
        let specs = vec![
            RunSpec::new("I-LRU", sys.clone()),
            RunSpec::new("NI-LRU", sys).with_mode(LlcMode::NonInclusive),
        ];
        let wls = workloads();
        let grid = run_grid(&specs, &wls, 4);
        assert_eq!(grid.len(), 4);
        let cells: Vec<_> = grid
            .iter()
            .map(|g| (g.spec_index, g.workload_index))
            .collect();
        assert_eq!(cells, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn run_cells_covers_only_requested_cells_and_notifies() {
        use std::sync::atomic::AtomicUsize;
        struct Counter {
            started: AtomicUsize,
            finished: AtomicUsize,
        }
        impl GridObserver for Counter {
            fn cell_started(&self, _s: usize, _w: usize) {
                self.started.fetch_add(1, Ordering::Relaxed);
            }
            fn cell_finished(
                &self,
                _s: usize,
                _w: usize,
                result: &RunResult,
                wall: std::time::Duration,
            ) {
                assert!(result.metrics.llc_accesses > 0);
                assert!(wall > std::time::Duration::ZERO);
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sys = SystemConfig::scaled();
        let specs = vec![
            RunSpec::new("I-LRU", sys.clone()),
            RunSpec::new("NI-LRU", sys).with_mode(LlcMode::NonInclusive),
        ];
        let wls = workloads();
        let obs = Counter {
            started: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
        };
        let cells = vec![(1, 0), (0, 1)];
        let out = run_cells(&specs, &wls, &cells, 2, &obs);
        assert_eq!(obs.started.load(Ordering::Relaxed), 2);
        assert_eq!(obs.finished.load(Ordering::Relaxed), 2);
        // Sorted output, exactly the requested cells.
        let got: Vec<_> = out
            .iter()
            .map(|g| (g.spec_index, g.workload_index))
            .collect();
        assert_eq!(got, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn spec_digest_ignores_label_but_not_semantics() {
        let sys = SystemConfig::scaled();
        let digest = |s: &RunSpec| {
            let mut h = ziv_common::Fnv1a::new();
            s.digest_into(&mut h);
            h.finish()
        };
        let a = RunSpec::new("one label", sys.clone());
        let b = RunSpec::new("another label", sys.clone());
        assert_eq!(digest(&a), digest(&b), "label must not affect the digest");
        let modes = RunSpec::new("x", sys.clone()).with_mode(LlcMode::NonInclusive);
        let seeds = RunSpec::new("x", sys.clone()).with_seed(99);
        let policies = RunSpec::new("x", sys).with_policy(ziv_replacement::PolicyKind::Srrip);
        for changed in [&modes, &seeds, &policies] {
            assert_ne!(digest(&a), digest(changed));
        }
    }

    #[test]
    fn grid_is_deterministic_across_thread_counts() {
        let sys = SystemConfig::scaled();
        let specs = vec![RunSpec::new("I-LRU", sys)];
        let wls = workloads();
        let a = run_grid(&specs, &wls, 1);
        let b = run_grid(&specs, &wls, 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result.metrics.llc_misses, y.result.metrics.llc_misses);
            assert_eq!(x.result.cores[0].cycles, y.result.cores[0].cycles);
        }
    }
}
