//! The statistical sampling engine: interval simulation with
//! functional warmup and Student-t confidence intervals.
//!
//! Full simulation of every access is exact but slow; the paper-scale
//! grids need hours per cell. Following the interval-sampling recipe
//! (SMARTS-style periodic sampling, arXiv 2402.00649), a sampled run
//! meters the first warm-horizon of the stream exactly (the **head
//! census**) and then divides the rest into fixed periods of three
//! phases:
//!
//! ```text
//!   |- head census -|------- skip -------|-- warm --|- timed window -|
//!     (timed, once)                                  i₀ | i₁ | … | iₙ
//!                    `------------- one period, × k -----------------'
//! ```
//!
//! - **Timed** accesses run the full simulation path — hierarchy,
//!   latency attribution, auditing, observability — and feed the
//!   per-interval estimators. The window is sliced into
//!   [`SamplingPlan::window`] consecutive intervals so one warm span
//!   feeds several estimates.
//! - **Skipped** accesses never touch the hierarchy: only the trace
//!   cursors and instruction/cycle clocks advance (at base CPI, in
//!   bulk), which is what buys the speedup.
//! - **Warm** accesses (the tail of each gap) run through the
//!   hierarchy inside a [`CacheHierarchy::begin_warmup`] scope:
//!   caches, directory, and replacement state are re-warmed after the
//!   skip, but the timing [`Metrics`] are provably untouched and
//!   observability/audit hooks are parked.
//!
//! Cache state has a long history: a skipped span leaves the hierarchy
//! frozen at its pre-skip image, and a timed window opened on that
//! stale image reads nonsense (false hits against patterns that moved
//! on, false misses for working sets that were never allowed to fill).
//! The auto resolver therefore sizes each warm span to the **LLC's
//! line count** — the horizon after which every replacement stack has
//! been rebuilt from scratch — and, because that horizon is paid per
//! period, prefers few long periods with sliced timed windows
//! ([`SamplingPlan::resolve_for_stream`]). Traces shorter than a few
//! warm horizons are out of sampling's regime entirely; the resolver
//! falls back to warming every fast-forwarded access (exact state, no
//! skip) rather than producing fast-but-wrong estimates.
//!
//! Each interval yields one [`IntervalEstimate`] (IPC, LLC miss rate,
//! inclusion victims); [`SampledRun::ipc_ci`] turns the interval
//! population into a Student-t confidence interval on the aggregate
//! IPC (estimated in CPI space so phase-varying workloads don't bias
//! it high). The cold-start transient — compulsory misses while the
//! working set first becomes resident — carries a far-above-steady
//! share of the full run's cycles, so it can neither be warmed out of
//! the estimate (biased high) nor dropped into an equal-weight interval
//! mean (overweighted by `period / timed`). The head census resolves
//! this as a stratified estimator: the head's cycles are measured
//! exactly (a zero-variance stratum), the steady intervals are sampled,
//! and the two combine instruction-weighted —
//! `CPI ≈ (C_head + CPI_steady × I_steady) / I_total` — with only the
//! steady stratum contributing to the confidence width.
//!
//! [`run_paired_sampled`] implements the auto-stop rule: the baseline
//! runs first, then the target stops as soon as the paired per-interval
//! IPC delta's confidence interval excludes zero (or its interval
//! budget is exhausted).

use crate::driver::{
    collect_observations, probe_snapshot, publish_core_clocks, RunOptions, RunResult,
};
use crate::spec::RunSpec;
use ziv_common::stats::{Confidence, ConfidenceInterval, RunningMoments};
use ziv_common::SimError;
use ziv_core::observe::{EpochSlicer, FlightRecorder, SamplingProgress, TelemetryProbe};
use ziv_core::profile::{ProfileSection, SelfProfiler};
use ziv_core::{Access, Auditor, CacheHierarchy, CancelToken};
use ziv_workloads::Workload;

/// How to sample a run: the period structure and the statistical
/// targets. All-integer and `Copy`/`Eq` so it can ride inside
/// [`RunOptions`] without disturbing its derives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPlan {
    /// Timed accesses per interval (global stream count). `0` means
    /// **auto**: the driver sizes the period from the workload (see
    /// [`SamplingPlan::resolve_for`]).
    pub interval: u64,
    /// Fast-forwarded accesses between timed windows (skip + warm).
    pub gap: u64,
    /// Fraction of the gap's **tail** that is functionally warmed, in
    /// per-mille (e.g. `250` = the last 25% of each gap).
    pub warmup_per_mille: u16,
    /// Consecutive intervals measured back-to-back after each gap (the
    /// timed window is `interval × window` accesses). Slicing one long
    /// timed window amortizes an expensive capacity-sized warm span
    /// over several estimates instead of paying it per estimate.
    pub window: u16,
    /// Head census: the first `head` accesses of the stream are timed
    /// (metered exactly, before the periodic structure begins), so the
    /// cold-start transient enters the aggregate estimate at its true
    /// instruction weight instead of being warmed out of it. `0` = no
    /// census (the periodic structure starts at access 0).
    pub head: u64,
    /// Confidence level for the reported intervals and the auto-stop
    /// rule.
    pub confidence: Confidence,
    /// Stop after this many completed intervals; `0` = run the whole
    /// trace.
    pub max_intervals: u32,
}

impl SamplingPlan {
    /// The auto-sized plan: period structure derived from the workload
    /// at run start, 95% confidence, no interval cap.
    pub fn auto() -> Self {
        SamplingPlan {
            interval: 0,
            gap: 0,
            warmup_per_mille: 250,
            window: 1,
            head: 0,
            confidence: Confidence::P95,
            max_intervals: 0,
        }
    }

    /// Whether this plan defers period sizing to the workload.
    pub fn is_auto(&self) -> bool {
        self.interval == 0
    }

    /// [`SamplingPlan::resolve_for_stream`] without a warm horizon or a
    /// phase period: the capacity-blind shape (8 periods, each 1/8
    /// timed, warm span = one interval). Kept for callers that have no
    /// system configuration at hand; the driver always resolves through
    /// [`SamplingPlan::resolve_for_stream`].
    pub fn resolve_for(&self, total_accesses: u64) -> SamplingPlan {
        self.resolve_for_stream(total_accesses, None, 0)
    }

    /// Resolves an auto plan against the stream it will sample.
    /// Explicit (non-auto) plans pass through unchanged.
    ///
    /// `warm_target` is the functional-warm horizon in accesses — how
    /// much of the stream must replay through the hierarchy after a
    /// skip before cache/directory/replacement state is re-established.
    /// The driver passes the LLC's line count: rebuilding every
    /// replacement stack after an arbitrary skip takes at most one fill
    /// per LLC line (the L2s refill on the way). That horizon is paid
    /// once per period, so the resolver prefers **few long periods**,
    /// slicing each period's timed window into several consecutive
    /// intervals ([`SamplingPlan::window`]) to keep the estimator
    /// population at ≥ 8:
    ///
    /// - **In regime** (`total ≥ 4 × warm_target`): a head census of
    ///   one warm horizon (the cold-start transient is metered exactly,
    ///   see [`SamplingPlan::head`]), then `k = total / (4 ×
    ///   warm_target) − 1` periods (1..=8) over the rest, ~1/32 of each
    ///   period timed, warm span = `warm_target`. The simulated
    ///   fraction lands near `(k + 1) / (total / warm_target)` — about
    ///   25–30% across the regime.
    /// - **Out of regime** (shorter traces): no skip span can be
    ///   re-warmed honestly, so every fast-forwarded access is warmed
    ///   instead (`warmup = 100%` of the gap) — estimates stay exact
    ///   and the speedup degrades toward 1×.
    /// - `warm_target == 0`: the capacity-blind shape (8 periods, warm
    ///   span = one interval, no head census).
    ///
    /// The result is then de-aliased against the workload's phase
    /// period ([`Workload::phase_period`]): when the sampled period
    /// divides evenly into whole program phases, every timed window
    /// starts at the same phase offset and the estimators only ever see
    /// that slice of the program's behavior. Stretching the gap by a
    /// quarter phase makes consecutive windows rotate through phase
    /// offsets instead.
    pub fn resolve_for_stream(
        &self,
        total_accesses: u64,
        phase_period: Option<u64>,
        warm_target: u64,
    ) -> SamplingPlan {
        if !self.is_auto() {
            return *self;
        }
        let total = total_accesses.max(64);
        let in_regime = warm_target > 0 && total / (4 * warm_target) > 0;
        let mut plan = if warm_target > 0 && !in_regime {
            // Out of regime: warm everything between timed windows.
            let period = (total / 8).max(64);
            let interval = (period / 8).max(8);
            SamplingPlan {
                interval,
                gap: period - interval,
                warmup_per_mille: 1000,
                window: 1,
                ..*self
            }
        } else if warm_target == 0 {
            let period = (total / 8).max(64);
            let interval = (period / 8).max(8);
            let gap = period - interval;
            let warm = interval.min(gap);
            SamplingPlan {
                interval,
                gap,
                warmup_per_mille: (((warm * 100) / gap.max(1)).min(100) * 10) as u16,
                window: 1,
                ..*self
            }
        } else {
            // In regime. Every warm-horizon-sized span simulated —
            // the head census plus one warm span per period — costs the
            // same, so the period count is the total span budget minus
            // the census: k = total / (4·warm_target) − 1, keeping the
            // simulated fraction near 25–30% across the whole regime.
            let steady = total - warm_target;
            let periods = (total / (4 * warm_target)).saturating_sub(1).clamp(1, 8);
            // Reserve a trace-tail margin the periods never tile into:
            // near the end of a single-pass run the cores park one by
            // one, and a timed window overlapping that drain would
            // meter the shrinking-concurrency regime a full run (whose
            // restart laps keep every core busy) never exhibits. The
            // margin lands in the trailing period's skip span.
            let usable = steady - steady / 16;
            let period = (usable / periods).max(64);
            let slices = 8u64.div_ceil(periods);
            let timed = (period / 32).max(8 * slices).min(period / 2);
            let interval = (timed / slices).max(8);
            let window = slices.min(u16::MAX as u64) as u16;
            let timed = interval * window as u64;
            let gap = period.saturating_sub(timed).max(1);
            let warm = warm_target.max(interval).min(gap);
            // Round up to a whole percent so the plan survives a
            // Display/parse round trip (the grammar speaks percent).
            let wpm = (warm * 100).div_ceil(gap).min(100) * 10;
            SamplingPlan {
                interval,
                gap,
                warmup_per_mille: wpm as u16,
                window,
                // About one warm horizon, in whole intervals so the
                // census closes on an interval boundary. Rounded down:
                // the periods were sized assuming a head of exactly
                // `warm_target`, so rounding up would push the last
                // timed window past the trace tail and lose it.
                head: interval * (warm_target / interval).max(1),
                ..*self
            }
        };
        if let Some(p) = phase_period.filter(|&p| p > 1) {
            if plan.period() % p == 0 {
                // (period + p/4) mod p = p/4 ≠ 0 for p ≥ 5, and the
                // max(1) nudge de-aliases p ∈ {2, 3, 4}.
                plan.gap += (p / 4).max(1);
            }
        }
        plan
    }

    /// Accesses per period (one gap plus one timed window).
    pub fn period(&self) -> u64 {
        self.gap + self.interval * self.window.max(1) as u64
    }

    /// Warm accesses per gap (the gap's tail).
    pub fn warm_len(&self) -> u64 {
        (self.gap.saturating_mul(self.warmup_per_mille as u64)) / 1000
    }

    /// Parses a `--sampling` spec.
    ///
    /// Grammar: `off` (sampling disabled, returns `Ok(None)`), `auto`,
    /// or a comma list of `key=value` pairs with keys
    /// `interval`/`i` (timed accesses), `gap`/`g` (fast-forward
    /// accesses), `warmup`/`w` (percent of the gap warmed),
    /// `window`/`x` (consecutive intervals per timed window, ≥ 1),
    /// `head`/`h` (accesses metered exactly at stream start),
    /// `confidence`/`c` (90, 95, or 99), `max`/`n` (interval cap).
    /// Unspecified keys take the auto plan's defaults; `interval` and
    /// `gap` must be given together.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending token.
    pub fn parse(spec: &str) -> Result<Option<SamplingPlan>, SimError> {
        let spec = spec.trim();
        match spec {
            "off" => return Ok(None),
            "auto" | "" => return Ok(Some(SamplingPlan::auto())),
            _ => {}
        }
        let mut plan = SamplingPlan::auto();
        let mut saw_interval = false;
        let mut saw_gap = false;
        for part in spec.split(',') {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                SimError::Config(format!(
                    "bad --sampling token '{part}': expected key=value \
                     (keys: interval/i, gap/g, warmup/w, window/x, head/h, \
                     confidence/c, max/n), 'auto', or 'off'"
                ))
            })?;
            let num: u64 = value.parse().map_err(|_| {
                SimError::Config(format!("bad --sampling value '{value}' for key '{key}'"))
            })?;
            match key {
                "interval" | "i" => {
                    if num == 0 {
                        return Err(SimError::Config(
                            "--sampling interval must be at least 1".into(),
                        ));
                    }
                    plan.interval = num;
                    saw_interval = true;
                }
                "gap" | "g" => {
                    plan.gap = num;
                    saw_gap = true;
                }
                "warmup" | "w" => {
                    if num > 100 {
                        return Err(SimError::Config(format!(
                            "--sampling warmup is a percentage of the gap; got {num}"
                        )));
                    }
                    plan.warmup_per_mille = (num * 10) as u16;
                }
                "window" | "x" => {
                    if num == 0 || num > u16::MAX as u64 {
                        return Err(SimError::Config(format!(
                            "--sampling window must be in 1..={}; got {num}",
                            u16::MAX
                        )));
                    }
                    plan.window = num as u16;
                }
                "head" | "h" => {
                    plan.head = num;
                }
                "confidence" | "c" => {
                    plan.confidence = u8::try_from(num)
                        .ok()
                        .and_then(Confidence::from_percent)
                        .ok_or_else(|| {
                            SimError::Config(format!(
                                "--sampling confidence must be 90, 95, or 99; got {num}"
                            ))
                        })?;
                }
                "max" | "n" => {
                    plan.max_intervals = num.min(u32::MAX as u64) as u32;
                }
                _ => {
                    return Err(SimError::Config(format!(
                        "unknown --sampling key '{key}' \
                         (keys: interval/i, gap/g, warmup/w, window/x, head/h, \
                         confidence/c, max/n)"
                    )));
                }
            }
        }
        if saw_interval != saw_gap {
            return Err(SimError::Config(
                "--sampling needs interval and gap together (or neither, for auto sizing)".into(),
            ));
        }
        Ok(Some(plan))
    }
}

/// Renders a plan back into the `--sampling` grammar.
impl std::fmt::Display for SamplingPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_auto() {
            write!(f, "auto")?;
        } else {
            write!(
                f,
                "interval={},gap={},warmup={}",
                self.interval,
                self.gap,
                self.warmup_per_mille / 10
            )?;
            if self.window > 1 {
                write!(f, ",window={}", self.window)?;
            }
            if self.head > 0 {
                write!(f, ",head={}", self.head)?;
            }
        }
        write!(f, ",confidence={}", self.confidence.percent())?;
        if self.max_intervals > 0 {
            write!(f, ",max={}", self.max_intervals)?;
        }
        Ok(())
    }
}

/// One timed interval's measurements — the sampling engine's unit of
/// statistical evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalEstimate {
    /// 0-based interval index.
    pub index: u32,
    /// Global access-stream position of the interval's first timed
    /// access.
    pub start_access: u64,
    /// Timed accesses measured.
    pub accesses: u64,
    /// Instructions retired across cores during the interval.
    pub instructions: u64,
    /// Advance of the slowest-core window (max per-core clock) during
    /// the interval.
    pub cycles: u64,
    /// Aggregate IPC over the interval (`instructions / cycles`).
    pub ipc: f64,
    /// LLC misses per LLC access during the interval (0 when the
    /// interval saw no LLC traffic).
    pub llc_miss_rate: f64,
    /// Inclusion victims suffered during the interval.
    pub inclusion_victims: u64,
}

/// Why a sampled run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every core completed its trace.
    TraceEnd,
    /// The plan's `max_intervals` budget was reached.
    MaxIntervals,
    /// The caller's per-interval stop rule fired (the paired delta's
    /// confidence interval excluded zero).
    DeltaResolved,
}

impl StopReason {
    /// Short machine-readable tag (CSV/report column).
    pub fn tag(&self) -> &'static str {
        match self {
            StopReason::TraceEnd => "trace-end",
            StopReason::MaxIntervals => "max-intervals",
            StopReason::DeltaResolved => "delta-resolved",
        }
    }
}

/// Where each access of a sampled run went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingProfile {
    /// The resolved plan the run actually used.
    pub plan: SamplingPlan,
    /// Accesses simulated on the full timed path.
    pub timed_accesses: u64,
    /// Accesses functionally warmed (state updated, metrics silent).
    pub warm_accesses: u64,
    /// Accesses skipped outright.
    pub skipped_accesses: u64,
    /// Completed intervals.
    pub intervals: u32,
    /// Why the run stopped.
    pub stop: StopReason,
}

impl SamplingProfile {
    /// Fraction of issued accesses that touched the hierarchy
    /// (timed + warm) — the cost model's proxy for sampled run time.
    pub fn simulated_fraction(&self) -> f64 {
        let total = self.timed_accesses + self.warm_accesses + self.skipped_accesses;
        if total == 0 {
            return 0.0;
        }
        (self.timed_accesses + self.warm_accesses) as f64 / total as f64
    }
}

/// A sampled run: the (estimate-grade) run result, the per-interval
/// evidence, and the phase accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledRun {
    /// Label/workload/core clocks as in a full run. **Caveat:** the
    /// hierarchy counters in `result.metrics` cover only the timed
    /// intervals, while the per-core instruction/cycle clocks cover
    /// the whole trace (including fast-forwarded spans) — use the
    /// interval estimators, not the raw counters, for reporting.
    pub result: RunResult,
    /// One estimate per completed interval, in stream order.
    pub intervals: Vec<IntervalEstimate>,
    /// Phase accounting and stop verdict.
    pub profile: SamplingProfile,
}

impl SampledRun {
    /// Running moments of the per-interval IPC population.
    pub fn ipc_moments(&self) -> RunningMoments {
        let mut m = RunningMoments::new();
        for iv in &self.intervals {
            m.push(iv.ipc);
        }
        m
    }

    /// Running moments of the per-interval CPI population over the
    /// **steady** intervals (those past the head census) — the
    /// equal-instruction-weight domain where an interval mean is
    /// unbiased for the run's ratio-of-totals aggregate (intervals
    /// cover a fixed access count, so their instruction counts are
    /// near-equal).
    fn cpi_moments(&self) -> RunningMoments {
        let head = self.profile.plan.head;
        let mut m = RunningMoments::new();
        for iv in &self.intervals {
            if iv.start_access >= head && iv.instructions > 0 {
                m.push(iv.cycles as f64 / iv.instructions as f64);
            }
        }
        m
    }

    /// Exact instruction/cycle totals over the head-census intervals —
    /// the zero-variance stratum covering the cold-start transient.
    fn head_census(&self) -> (u64, u64) {
        let head = self.profile.plan.head;
        let mut instructions = 0u64;
        let mut cycles = 0u64;
        for iv in &self.intervals {
            if iv.start_access < head {
                instructions += iv.instructions;
                cycles += iv.cycles;
            }
        }
        (instructions, cycles)
    }

    /// Stratified aggregate: combines the head census (exact) with a
    /// steady-state CPI (sampled) at their instruction weights. Returns
    /// the aggregate CPI and the steady stratum's weight — the factor
    /// that scales the steady CPI's standard error down, since the
    /// census contributes none. With no head census this degenerates to
    /// `(steady_cpi, 1.0)`.
    fn census_weighted(&self, steady_cpi: f64) -> Option<(f64, f64)> {
        let total = self.result.total_instructions();
        if total == 0 {
            return None;
        }
        let (head_instr, head_cycles) = self.head_census();
        let steady_instr = total.saturating_sub(head_instr);
        let weight = steady_instr as f64 / total as f64;
        let aggregate = (head_cycles as f64 + steady_cpi * steady_instr as f64) / total as f64;
        Some((aggregate, weight))
    }

    /// The Student-t confidence interval on the run's aggregate IPC at
    /// the plan's confidence level; `None` with fewer than two
    /// intervals.
    ///
    /// Computed in CPI space and inverted (delta method:
    /// `SE_ipc ≈ SE_cpi / CPI²`): a plain arithmetic mean of interval
    /// IPCs would sit above the full run's instructions-over-cycles
    /// aggregate whenever IPC varies across intervals (Jensen), which
    /// is exactly the phase-varying case sampling exists for. When the
    /// plan carries a head census, the steady CPI mean is first folded
    /// into the stratified aggregate (see the module docs); only the
    /// sampled stratum's weight contributes to the half-width.
    pub fn ipc_ci(&self) -> Option<ConfidenceInterval> {
        let ci = self
            .cpi_moments()
            .confidence_interval(self.profile.plan.confidence)?;
        let (aggregate, weight) = self.census_weighted(ci.mean)?;
        if aggregate <= 0.0 {
            return None;
        }
        Some(ConfidenceInterval {
            mean: 1.0 / aggregate,
            half_width: ci.half_width * weight / (aggregate * aggregate),
            confidence: ci.confidence,
        })
    }

    /// Point estimate of the run's aggregate IPC: the head census and
    /// the mean steady-interval CPI combined at instruction weight,
    /// inverted (see [`SampledRun::ipc_ci`] for why not the arithmetic
    /// IPC mean); `None` when no steady interval completed.
    pub fn ipc_estimate(&self) -> Option<f64> {
        let cpi = self.cpi_moments().mean()?;
        let (aggregate, _) = self.census_weighted(cpi)?;
        if aggregate > 0.0 {
            Some(1.0 / aggregate)
        } else {
            None
        }
    }

    /// Mean per-interval LLC miss rate; `None` when no interval
    /// completed.
    pub fn miss_rate_estimate(&self) -> Option<f64> {
        let mut m = RunningMoments::new();
        for iv in &self.intervals {
            m.push(iv.llc_miss_rate);
        }
        m.mean()
    }

    /// Total inclusion victims observed across timed intervals.
    pub fn inclusion_victims_sampled(&self) -> u64 {
        self.intervals.iter().map(|iv| iv.inclusion_victims).sum()
    }
}

/// The paired ZIV-vs-baseline auto-stop verdict from
/// [`run_paired_sampled`].
#[derive(Debug, Clone, PartialEq)]
pub struct PairedSampleReport {
    /// The baseline's sampled run (always runs to its own stop rule).
    pub baseline: SampledRun,
    /// The target's sampled run (stops early once resolved).
    pub target: SampledRun,
    /// Confidence interval on the per-interval IPC delta
    /// (`target − baseline`), over the paired intervals; `None` with
    /// fewer than two pairs.
    pub delta_ci: Option<ConfidenceInterval>,
    /// Whether the delta's interval excluded zero (the auto-stop rule
    /// fired or the final interval resolved it).
    pub resolved: bool,
}

/// Which phase a global stream position falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Timed,
    Skip,
    Warm,
}

fn phase_of(pos_in_period: u64, plan: &SamplingPlan) -> Phase {
    let skip = plan.gap - plan.warm_len();
    if pos_in_period < skip {
        Phase::Skip
    } else if pos_in_period < plan.gap {
        Phase::Warm
    } else {
        Phase::Timed
    }
}

/// Telemetry stratum code for the current position (the values
/// `ziv-telemetry`'s layout documents: 1 head, 2 skip, 3 warm,
/// 4 timed; 0 is reserved for unsampled full runs).
fn stratum_code(in_head: bool, phase: Phase) -> u64 {
    if in_head {
        return 1;
    }
    match phase {
        Phase::Skip => 2,
        Phase::Warm => 3,
        Phase::Timed => 4,
    }
}

/// Resolves `opts.sampling` against the workload: auto plans are sized
/// from the stream length and de-aliased against the workload's phase
/// period, derived from `spec`'s cache capacities (the same scale the
/// campaign generators build footprints from).
fn resolve_plan(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
) -> Result<SamplingPlan, SimError> {
    let plan = opts
        .sampling
        .ok_or_else(|| SimError::Config("run_one_sampled needs opts.sampling".into()))?;
    let scale = ziv_workloads::ScaleParams::from_system(&spec.system);
    Ok(plan.resolve_for_stream(
        workload.total_accesses(),
        workload.phase_period(scale),
        scale.llc_lines,
    ))
}

/// Snapshot of the estimator inputs at an interval boundary.
#[derive(Debug, Clone, Copy)]
struct IntervalOpen {
    start_access: u64,
    instructions: u64,
    window: u64,
    llc_accesses: u64,
    llc_misses: u64,
    inclusion_victims: u64,
}

/// Simulates `workload` under `spec` with the sampling plan in
/// `opts.sampling`, on the current thread. See the module docs for the
/// period structure. `opts.audit` and `opts.observe` apply to timed
/// accesses only — fast-forwarded spans are audit- and
/// observability-silent by construction.
///
/// Unlike the full driver, a sampled run is single-pass: cores park
/// after their first trace completion instead of restarting (restart
/// laps exist to keep *contention* representative over a full co-run
/// window, which interval estimates re-weight anyway; DESIGN.md §12
/// lists the residual biases).
///
/// # Errors
///
/// - [`SimError::Config`] when `opts.sampling` is `None`.
/// - [`SimError::Audit`] / [`SimError::BudgetExceeded`] /
///   [`SimError::Timeout`] exactly as in the full driver, from timed
///   accesses.
///
/// # Panics
///
/// Panics if the workload's core count exceeds the system's.
pub fn run_one_sampled(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
) -> Result<SampledRun, SimError> {
    run_one_sampled_supervised(spec, workload, opts, None, |_| false)
}

/// [`run_one_sampled`] under an optional cooperative [`CancelToken`]
/// and a per-interval stop rule: `on_interval` sees each completed
/// interval and returns `true` to stop the run
/// ([`StopReason::DeltaResolved`]).
///
/// # Errors
///
/// As [`run_one_sampled`].
///
/// # Panics
///
/// Panics if the workload's core count exceeds the system's.
pub fn run_one_sampled_supervised(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
    cancel: Option<&CancelToken>,
    on_interval: impl FnMut(&IntervalEstimate) -> bool,
) -> Result<SampledRun, SimError> {
    run_one_sampled_instrumented(spec, workload, opts, cancel, None, on_interval)
}

/// [`run_one_sampled_supervised`] plus an optional live-telemetry
/// probe (the same contract as
/// [`run_one_instrumented`](crate::run_one_instrumented)): every 256
/// accesses the loop publishes a progress sample carrying the current
/// sampling stratum (head/skip/warm/timed), and each closed interval
/// publishes the running per-interval IPC mean and confidence
/// half-width so watchers can see CI convergence live. With `probe ==
/// None` every publish site is a single never-taken branch.
///
/// # Errors
///
/// As [`run_one_sampled`].
///
/// # Panics
///
/// Panics if the workload's core count exceeds the system's.
pub fn run_one_sampled_instrumented(
    spec: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
    cancel: Option<&CancelToken>,
    probe: Option<&dyn TelemetryProbe>,
    mut on_interval: impl FnMut(&IntervalEstimate) -> bool,
) -> Result<SampledRun, SimError> {
    let plan = resolve_plan(spec, workload, opts)?;
    let period = plan.period();
    let hier_cfg = spec.build_hierarchy_config(workload);
    let mut h = CacheHierarchy::new(&hier_cfg);
    let ncores = workload.cores();
    assert!(
        ncores <= spec.system.cores,
        "workload has {ncores} cores but the system has {}",
        spec.system.cores
    );
    let base_cpi = spec.system.base_cpi;

    let mut cursor = vec![0usize; ncores];
    let mut cycles = vec![0f64; ncores];
    let mut instructions = vec![0u64; ncores];
    let mut completed = vec![false; ncores];
    let mut done = 0usize;
    let mut issued = 0u64;
    let mut auditor = Auditor::new(opts.audit);
    let budget_cycles = opts.budget.map(|b| b.cycles_for(workload));
    let observing = opts.observe.is_enabled();
    if let Some(rec) = FlightRecorder::new(
        &opts.observe,
        ncores,
        spec.system.llc.banks,
        spec.system.llc.bank_geometry.sets as usize,
    ) {
        h.attach_recorder(rec);
    }
    let profiling = opts.observe.profile;
    if profiling {
        h.attach_profiler(Box::new(SelfProfiler::new()));
    }
    let mut slicer = opts.observe.epoch.map(|n| EpochSlicer::new(n, ncores));

    let mut intervals: Vec<IntervalEstimate> = Vec::new();
    // Running per-interval IPC moments, published to the probe at each
    // interval close so watchers can see CI convergence live. Advisory
    // only: the rigorous stratified estimate stays in
    // [`SampledRun::ipc_ci`].
    let mut live_ipc = RunningMoments::new();
    let mut open: Option<IntervalOpen> = None;
    let mut timed_accesses = 0u64;
    let mut warm_accesses = 0u64;
    let mut skipped_accesses = 0u64;
    let mut stop = StopReason::TraceEnd;
    let mut failure: Option<SimError> = None;
    let window_now = |cycles: &[f64]| cycles.iter().copied().fold(0f64, f64::max) as u64;

    'sim: while done < ncores {
        if let Some(tok) = cancel {
            if let Some(reason) = tok.fired(issued) {
                failure = Some(SimError::Timeout {
                    reason,
                    access_index: issued,
                });
                break 'sim;
            }
            if issued & 0xFF == 0 {
                tok.note_progress(issued);
            }
        }
        // The head census is timed verbatim; the periodic structure
        // begins after it.
        let in_head = issued < plan.head;
        let pos = if in_head {
            0
        } else {
            (issued - plan.head) % period
        };
        let phase = if in_head {
            Phase::Timed
        } else {
            phase_of(pos, &plan)
        };
        if let Some(p) = probe {
            if issued & 0xFF == 0 {
                p.publish_progress(&probe_snapshot(
                    &h,
                    &instructions,
                    &cycles,
                    issued,
                    stratum_code(in_head, phase),
                ));
            }
        }

        if phase == Phase::Skip {
            // Bulk fast-forward: skipped accesses never touch the
            // hierarchy, so the per-access lagging-core interleave is
            // unobservable — charge each core its records' base-CPI
            // work in one pass over the trace slices instead of paying
            // the core-selection scan per access. The absolute clock
            // skew this introduces cancels out of every interval
            // estimate (they are deltas).
            let mut left = (plan.gap - plan.warm_len()) - pos;
            while left > 0 && done < ncores {
                let active = ncores - done;
                let share = (left / active as u64).max(1);
                for c in 0..ncores {
                    if completed[c] || left == 0 {
                        continue;
                    }
                    let trace = &workload.traces[c];
                    let avail = (trace.records.len() - cursor[c]) as u64;
                    let take = share.min(avail).min(left) as usize;
                    let mut instr = 0u64;
                    for r in &trace.records[cursor[c]..cursor[c] + take] {
                        instr += 1 + r.gap as u64;
                    }
                    cursor[c] += take;
                    instructions[c] += instr;
                    cycles[c] += instr as f64 * base_cpi;
                    issued += take as u64;
                    skipped_accesses += take as u64;
                    left -= take as u64;
                    if cursor[c] == trace.records.len() {
                        completed[c] = true;
                        done += 1;
                    }
                }
            }
            if let Some(tok) = cancel {
                tok.note_progress(issued);
            }
            continue 'sim;
        }

        // Phase transitions happen on the global stream, so the scope
        // handling below is strictly sequential: open the warmup scope at
        // the first warm access of a period, close it at the period
        // boundary, and open the interval estimator on the first timed
        // access.
        if phase == Phase::Timed && open.is_none() {
            if h.is_warming() {
                h.end_warmup();
            }
            let m = h.metrics();
            open = Some(IntervalOpen {
                start_access: issued,
                instructions: instructions.iter().sum(),
                window: window_now(&cycles),
                llc_accesses: m.llc_accesses,
                llc_misses: m.llc_misses,
                inclusion_victims: m.inclusion_victims,
            });
        }
        if phase == Phase::Warm && !h.is_warming() {
            h.begin_warmup();
        }

        // Lagging unparked core, as in the full driver.
        let mut core = usize::MAX;
        let mut best = f64::INFINITY;
        for c in 0..ncores {
            if !completed[c] && cycles[c] < best {
                best = cycles[c];
                core = c;
            }
        }
        if core == usize::MAX {
            break;
        }
        let trace = &workload.traces[core];
        let rec = trace.records[cursor[core]];
        let seq = (cursor[core] * ncores + core) as u64;
        cursor[core] += 1;
        let finishing = cursor[core] == trace.records.len();

        match phase {
            Phase::Skip => unreachable!("skip spans fast-forward in bulk above"),
            Phase::Warm | Phase::Timed => {
                let a = Access {
                    core: ziv_common::CoreId::new(core),
                    addr: rec.addr,
                    pc: rec.pc,
                    is_write: rec.is_write,
                    is_instr: false,
                };
                let now = cycles[core] as u64;
                let t0 = (profiling && phase == Phase::Timed).then(std::time::Instant::now);
                let lat = h.access(&a, now, seq);
                if let Some(t0) = t0 {
                    h.profile_add(ProfileSection::Hierarchy, t0.elapsed());
                }
                let exposed = lat as f64 * (1.0 - trace.overlap);
                cycles[core] += (1 + rec.gap as u64) as f64 * base_cpi + exposed;
                instructions[core] += 1 + rec.gap as u64;
                if phase == Phase::Warm {
                    warm_accesses += 1;
                } else {
                    timed_accesses += 1;
                }
                if h.is_hung() {
                    let reason = match cancel {
                        Some(tok) => loop {
                            if let Some(reason) = tok.fired(issued) {
                                break reason;
                            }
                            tok.note_progress(issued);
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        },
                        None => "model hung (hang-core fault) with no supervisor attached".into(),
                    };
                    failure = Some(SimError::Timeout {
                        reason,
                        access_index: issued,
                    });
                    break 'sim;
                }
                if phase == Phase::Timed {
                    if auditor.due() {
                        let t0 = profiling.then(std::time::Instant::now);
                        let verdict = Auditor::check(&h, issued);
                        if let Some(t0) = t0 {
                            h.profile_add(ProfileSection::Audit, t0.elapsed());
                        }
                        if let Err(v) = verdict {
                            h.record_audit_violation(&v, now);
                            failure = Some(SimError::Audit(v));
                            break 'sim;
                        }
                    }
                    if let Some(budget) = budget_cycles {
                        let c = cycles[core] as u64;
                        if c > budget {
                            failure = Some(SimError::BudgetExceeded {
                                budget_cycles: budget,
                                core,
                                cycles: c,
                                access_index: issued,
                            });
                            break 'sim;
                        }
                    }
                    if let Some(sl) = slicer.as_mut() {
                        if sl.due(timed_accesses) {
                            publish_core_clocks(&mut h, &instructions, &cycles);
                            sl.slice(timed_accesses, h.metrics());
                        }
                    }
                }
            }
        }

        issued += 1;
        if finishing {
            completed[core] = true;
            done += 1;
        }

        // Close the interval when it completes — the access just issued
        // was its `interval`-th — or when the trace ran out mid-interval
        // (partial intervals are discarded: a short window would get
        // full weight in the mean; a partial *head* interval is kept,
        // because census intervals are summed at their true instruction
        // weight, never averaged). Timed positions sit at the end of
        // the period, so `pos + 1 - gap` is the count of timed accesses
        // issued this period; `issued` was just incremented, so inside
        // the head it is the count of census accesses issued.
        let interval_done = phase == Phase::Timed
            && if in_head {
                issued.is_multiple_of(plan.interval) || issued == plan.head
            } else {
                (pos + 1 - plan.gap) % plan.interval == 0
            };
        let closing = open.is_some() && phase == Phase::Timed && (interval_done || done == ncores);
        if closing {
            let full_window = interval_done;
            let o = open.take().expect("interval is open");
            if full_window {
                let m = h.metrics();
                let instr: u64 = instructions.iter().sum::<u64>() - o.instructions;
                let window = window_now(&cycles).saturating_sub(o.window);
                let llc_acc = m.llc_accesses - o.llc_accesses;
                let llc_miss = m.llc_misses - o.llc_misses;
                let iv = IntervalEstimate {
                    index: intervals.len() as u32,
                    start_access: o.start_access,
                    accesses: issued - o.start_access,
                    instructions: instr,
                    cycles: window,
                    ipc: if window == 0 {
                        0.0
                    } else {
                        instr as f64 / window as f64
                    },
                    llc_miss_rate: if llc_acc == 0 {
                        0.0
                    } else {
                        llc_miss as f64 / llc_acc as f64
                    },
                    inclusion_victims: m.inclusion_victims - o.inclusion_victims,
                };
                intervals.push(iv);
                if let Some(p) = probe {
                    live_ipc.push(iv.ipc);
                    let half = live_ipc
                        .confidence_interval(plan.confidence)
                        .map_or(0.0, |ci| (ci.high() - ci.low()) / 2.0);
                    p.publish_sampling(&SamplingProgress {
                        intervals: intervals.len() as u64,
                        ipc_mean: live_ipc.mean().unwrap_or(0.0),
                        ipc_half_width: half,
                    });
                }
                if plan.max_intervals > 0 && intervals.len() as u32 >= plan.max_intervals {
                    stop = StopReason::MaxIntervals;
                    break 'sim;
                }
                if on_interval(&iv) {
                    stop = StopReason::DeltaResolved;
                    break 'sim;
                }
            }
        }
    }

    if h.is_warming() {
        h.end_warmup();
    }
    if let Some(err) = failure {
        if let Some(sl) = slicer.as_mut() {
            publish_core_clocks(&mut h, &instructions, &cycles);
            sl.finish(timed_accesses, h.metrics());
        }
        let window = window_now(&cycles);
        let _ = collect_observations(&mut h, slicer, observing, window);
        return Err(err);
    }

    publish_core_clocks(&mut h, &instructions, &cycles);
    h.finalize();
    debug_assert!(h.verify_invariants().is_ok(), "{:?}", h.verify_invariants());
    if let Some(sl) = slicer.as_mut() {
        sl.finish(timed_accesses, h.metrics());
    }
    let window = window_now(&cycles);
    let observations = collect_observations(&mut h, slicer, observing, window);
    // Sampled runs keep their observations out of the public result for
    // now (nothing consumes a partial-coverage flight recording); the
    // drain above still detaches the recorder cleanly.
    drop(observations);

    let result = RunResult {
        label: spec.label.clone(),
        workload: workload.name.clone(),
        cores: (0..ncores)
            .map(|c| crate::driver::CoreRunStats {
                instructions: instructions[c],
                cycles: cycles[c] as u64,
                app_name: workload.traces[c].app_name,
            })
            .collect(),
        metrics: h.metrics().clone(),
    };
    let profile = SamplingProfile {
        plan,
        timed_accesses,
        warm_accesses,
        skipped_accesses,
        intervals: intervals.len() as u32,
        stop,
    };
    Ok(SampledRun {
        result,
        intervals,
        profile,
    })
}

/// Runs `baseline` sampled to completion, then `target` sampled with
/// the auto-stop rule: after each completed target interval, pair it
/// with the same-index baseline interval and stop as soon as the
/// paired IPC delta's confidence interval (at the plan's level)
/// excludes zero.
///
/// The plan is resolved once, against the **baseline** spec, and both
/// runs use the resolved plan verbatim — index-pairing the interval
/// series requires an identical period structure even when the two
/// specs' cache scales would de-alias differently.
///
/// # Errors
///
/// As [`run_one_sampled`], for either run.
///
/// # Panics
///
/// Panics if the workload's core count exceeds either spec's system
/// core count.
pub fn run_paired_sampled(
    baseline: &RunSpec,
    target: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
) -> Result<PairedSampleReport, SimError> {
    run_paired_sampled_instrumented(baseline, target, workload, opts, None)
}

/// [`run_paired_sampled`] plus an optional live-telemetry probe: the
/// probe sees `cell_begin`/`cell_end` around each of the two runs
/// (spec index 0 = baseline, 1 = target) and live stratum/CI progress
/// from inside them, so `zivsim watch` can follow a paired sampling
/// session like a two-cell campaign.
///
/// # Errors
///
/// As [`run_paired_sampled`].
///
/// # Panics
///
/// Panics if the workload's core count exceeds either spec's system
/// core count.
pub fn run_paired_sampled_instrumented(
    baseline: &RunSpec,
    target: &RunSpec,
    workload: &Workload,
    opts: &RunOptions,
    probe: Option<&dyn TelemetryProbe>,
) -> Result<PairedSampleReport, SimError> {
    let mut opts = *opts;
    opts.sampling = Some(resolve_plan(baseline, workload, &opts)?);
    let opts = &opts;
    let expected = workload.total_accesses();
    if let Some(p) = probe {
        p.cell_begin(0, 0, 1, expected, &baseline.label, &workload.name);
    }
    let base = run_one_sampled_instrumented(baseline, workload, opts, None, probe, |_| false)?;
    let confidence = base.profile.plan.confidence;
    let base_ipcs: Vec<f64> = base.intervals.iter().map(|iv| iv.ipc).collect();
    let mut deltas = RunningMoments::new();
    if let Some(p) = probe {
        p.cell_end();
        p.cell_begin(1, 0, 1, expected, &target.label, &workload.name);
    }
    let tgt = run_one_sampled_instrumented(target, workload, opts, None, probe, |iv| {
        let Some(&b) = base_ipcs.get(iv.index as usize) else {
            return false;
        };
        deltas.push(iv.ipc - b);
        deltas
            .confidence_interval(confidence)
            .is_some_and(|ci| ci.excludes_zero())
    })?;
    if let Some(p) = probe {
        p.cell_end();
    }
    let delta_ci = deltas.confidence_interval(confidence);
    let resolved = delta_ci.is_some_and(|ci| ci.excludes_zero());
    Ok(PairedSampleReport {
        baseline: base,
        target: tgt,
        delta_ci,
        resolved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::config::SystemConfig;
    use ziv_core::{LlcMode, ZivProperty};
    use ziv_workloads::{apps, mixes, ScaleParams};

    fn wl(cores: usize, accesses: usize) -> Workload {
        let sys = SystemConfig::scaled();
        mixes::homogeneous(
            apps::APPS[4],
            cores,
            accesses,
            1,
            ScaleParams::from_system(&sys),
        )
    }

    fn sampled_opts(plan: SamplingPlan) -> RunOptions {
        RunOptions {
            sampling: Some(plan),
            ..RunOptions::default()
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        assert_eq!(SamplingPlan::parse("off").unwrap(), None);
        assert_eq!(
            SamplingPlan::parse("auto").unwrap(),
            Some(SamplingPlan::auto())
        );
        let p = SamplingPlan::parse(
            "interval=200,gap=1800,warmup=25,window=4,head=400,confidence=99,max=10",
        )
        .unwrap()
        .unwrap();
        assert_eq!(p.interval, 200);
        assert_eq!(p.gap, 1800);
        assert_eq!(p.warmup_per_mille, 250);
        assert_eq!(p.window, 4);
        assert_eq!(p.head, 400);
        assert_eq!(p.period(), 1800 + 4 * 200);
        assert_eq!(p.confidence, Confidence::P99);
        assert_eq!(p.max_intervals, 10);
        assert_eq!(SamplingPlan::parse(&p.to_string()).unwrap(), Some(p));
        for bad in [
            "interval=0,gap=10",
            "interval=10",
            "gap=10",
            "warmup=150",
            "window=0",
            "confidence=80",
            "junk",
            "i=abc,g=1",
            "zzz=1",
        ] {
            assert!(SamplingPlan::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn auto_plan_resolves_to_sane_periods() {
        let p = SamplingPlan::auto().resolve_for(12_000);
        assert!(!p.is_auto());
        assert_eq!(p.period(), 1500);
        assert!(p.interval >= 8);
        assert!(p.warm_len() > 0);
        assert!(p.warm_len() <= p.gap);
        // Tiny workloads still get a usable period.
        let tiny = SamplingPlan::auto().resolve_for(100);
        assert!(tiny.interval >= 8);
        assert!(tiny.period() >= 64);
        // Explicit plans pass through untouched.
        let explicit = SamplingPlan {
            interval: 7,
            gap: 13,
            warmup_per_mille: 100,
            window: 1,
            head: 0,
            confidence: Confidence::P90,
            max_intervals: 2,
        };
        assert_eq!(explicit.resolve_for(1_000_000), explicit);
    }

    #[test]
    fn capacity_aware_resolution_sizes_warm_spans_and_slices_windows() {
        // In regime: 160k accesses against a 16k-line LLC → a head
        // census of about one warm horizon, long periods with warm
        // spans ≥ the LLC, sliced timed windows, and an overall
        // simulated fraction low enough to be worth sampling.
        let p = SamplingPlan::auto().resolve_for_stream(160_000, None, 16_384);
        assert!(!p.is_auto());
        assert!(p.window > 1, "one warm span must feed several intervals");
        assert!(p.warm_len() >= 16_384, "warm span covers the LLC horizon");
        assert!(p.head > 0, "in-regime plans census the cold head");
        assert!(p.head <= 16_384, "the census never outgrows the horizon");
        assert_eq!(
            p.head % p.interval,
            0,
            "census closes on interval boundaries"
        );
        let timed = p.interval * p.window as u64;
        let periods = (160_000 - p.head) / p.period();
        let simulated = (p.head + periods * (timed + p.warm_len())) as f64 / 160_000_f64;
        assert!(simulated < 0.35, "simulated fraction {simulated} too high");
        assert!(
            periods * p.window as u64 >= 8,
            "at least 8 steady intervals over the stream"
        );
        // Out of regime: the trace is shorter than a few warm horizons,
        // so the resolver warms everything instead of skipping (and the
        // census is moot — everything is metered already).
        let f = SamplingPlan::auto().resolve_for_stream(12_000, None, 16_384);
        assert_eq!(f.warmup_per_mille, 1000, "short traces warm the whole gap");
        assert_eq!(f.warm_len(), f.gap);
        assert_eq!(f.window, 1);
        assert_eq!(f.head, 0);
        // Round-trip through the CLI grammar survives for both shapes.
        for plan in [p, f] {
            assert_eq!(SamplingPlan::parse(&plan.to_string()).unwrap(), Some(plan));
        }
    }

    #[test]
    fn auto_plans_dealias_against_phase_periods() {
        let plain = SamplingPlan::auto().resolve_for(12_000); // period 1500
        let aliased = SamplingPlan::auto().resolve_for_stream(12_000, Some(750), 0);
        assert_ne!(aliased.period() % 750, 0);
        assert_eq!(aliased.interval, plain.interval, "only the gap stretches");
        // Non-divisor phases and phase-free workloads pass through.
        assert_eq!(
            SamplingPlan::auto().resolve_for_stream(12_000, Some(700), 0),
            plain
        );
        assert_eq!(
            SamplingPlan::auto().resolve_for_stream(12_000, None, 0),
            plain
        );
        // Tiny phases still de-alias (the max(1) nudge).
        assert_ne!(
            SamplingPlan::auto()
                .resolve_for_stream(12_000, Some(2), 0)
                .period()
                % 2,
            0
        );
        // Explicit plans are authoritative even when aliased.
        let explicit = SamplingPlan {
            interval: 10,
            gap: 90,
            ..SamplingPlan::auto()
        };
        assert_eq!(explicit.resolve_for_stream(12_000, Some(100), 0), explicit);
    }

    #[test]
    fn phased_workloads_get_dealias_adjusted_periods() {
        let sys = SystemConfig::scaled();
        let scale = ScaleParams::from_system(&sys);
        let workload =
            mixes::homogeneous(apps::app_by_name("scanphase").unwrap(), 2, 24_000, 1, scale);
        let phase = workload.phase_period(scale).expect("scanphase is phased");
        assert_eq!(phase, 6_000);
        // 48k global accesses → auto period 6000, an exact phase
        // multiple: the plain resolver aliases, the run must not.
        assert_eq!(SamplingPlan::auto().resolve_for(48_000).period() % phase, 0);
        let run = run_one_sampled(
            &RunSpec::new("I-LRU", sys),
            &workload,
            &sampled_opts(SamplingPlan::auto()),
        )
        .unwrap();
        assert_ne!(run.profile.plan.period() % phase, 0);
        assert!(run.intervals.len() >= 2);
    }

    #[test]
    fn sampled_run_partitions_every_access() {
        let workload = wl(2, 3_000);
        let spec = RunSpec::new("I-LRU", SystemConfig::scaled());
        let plan = SamplingPlan {
            interval: 64,
            gap: 448,
            ..SamplingPlan::auto()
        };
        let run = run_one_sampled(&spec, &workload, &sampled_opts(plan)).unwrap();
        let p = &run.profile;
        assert_eq!(
            p.timed_accesses + p.warm_accesses + p.skipped_accesses,
            workload.total_accesses(),
            "single pass must issue every trace record exactly once"
        );
        assert!(p.skipped_accesses > p.timed_accesses, "this plan must skip");
        assert!(p.simulated_fraction() < 0.5);
        assert!(run.intervals.len() >= 4);
        assert_eq!(p.intervals as usize, run.intervals.len());
        assert_eq!(p.stop, StopReason::TraceEnd);
        let ci = run.ipc_ci().expect("enough intervals for a CI");
        assert!(ci.mean > 0.0);
        assert!(ci.half_width >= 0.0);
        for iv in &run.intervals {
            assert!(iv.ipc > 0.0);
            assert!(iv.accesses >= run.profile.plan.interval);
            assert!((0.0..=1.0).contains(&iv.llc_miss_rate));
        }
    }

    #[test]
    fn short_traces_resolve_to_warm_everything() {
        // 6k accesses against a 16k-line LLC: far below the sampling
        // regime, so the auto plan must warm every fast-forwarded
        // access instead of freezing state across skips.
        let workload = wl(2, 3_000);
        let spec = RunSpec::new("I-LRU", SystemConfig::scaled());
        let run = run_one_sampled(&spec, &workload, &sampled_opts(SamplingPlan::auto())).unwrap();
        let p = &run.profile;
        assert_eq!(p.skipped_accesses, 0, "out-of-regime plans never skip");
        assert_eq!(
            p.timed_accesses + p.warm_accesses,
            workload.total_accesses()
        );
        assert!((p.simulated_fraction() - 1.0).abs() < f64::EPSILON);
        assert!(run.intervals.len() >= 4);
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let workload = wl(2, 2_000);
        let spec = RunSpec::new("ZIV", SystemConfig::scaled())
            .with_mode(LlcMode::Ziv(ZivProperty::LikelyDead));
        let opts = sampled_opts(SamplingPlan::auto());
        let a = run_one_sampled(&spec, &workload, &opts).unwrap();
        let b = run_one_sampled(&spec, &workload, &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn max_intervals_stops_early() {
        let workload = wl(2, 3_000);
        let spec = RunSpec::new("I-LRU", SystemConfig::scaled());
        let plan = SamplingPlan {
            max_intervals: 2,
            ..SamplingPlan::auto()
        };
        let run = run_one_sampled(&spec, &workload, &sampled_opts(plan)).unwrap();
        assert_eq!(run.intervals.len(), 2);
        assert_eq!(run.profile.stop, StopReason::MaxIntervals);
    }

    #[test]
    fn sampling_none_is_a_config_error() {
        let workload = wl(2, 500);
        let spec = RunSpec::new("I-LRU", SystemConfig::scaled());
        let err = run_one_sampled(&spec, &workload, &RunOptions::default()).unwrap_err();
        assert_eq!(err.kind_tag(), "config");
    }

    #[test]
    fn paired_sampling_reports_a_delta() {
        let workload = wl(2, 3_000);
        let sys = SystemConfig::scaled();
        let base = RunSpec::new("I-LRU", sys.clone());
        let ziv = RunSpec::new("ZIV", sys).with_mode(LlcMode::Ziv(ZivProperty::LikelyDead));
        let rep = run_paired_sampled(&base, &ziv, &workload, &sampled_opts(SamplingPlan::auto()))
            .unwrap();
        assert!(!rep.baseline.intervals.is_empty());
        assert!(!rep.target.intervals.is_empty());
        assert!(
            rep.target.intervals.len() <= rep.baseline.intervals.len(),
            "target never outruns the baseline's interval series"
        );
        if rep.resolved {
            assert_eq!(rep.target.profile.stop, StopReason::DeltaResolved);
            assert!(rep.delta_ci.unwrap().excludes_zero());
        }
    }
}
