//! Multiprogrammed mix composition, following the paper's Section IV
//! protocol: homogeneous mixes (one application replicated on every
//! core) and heterogeneous mixes (random draws with every application
//! represented an equal number of times across the mix set, to avoid
//! bias).

use crate::apps::{generate, AppSpec, APPS};
use crate::{ScaleParams, Workload};
use ziv_common::SimRng;

/// Line-address stride between per-core private address spaces
/// (2^30 lines = 64 GB regions: disjoint for any footprint we generate).
pub const CORE_REGION_LINES: u64 = 1 << 30;

/// A homogeneous mix: `cores` copies of `app`, each in its own address
/// space with its own seed (the paper's "multiple copies of the same
/// application").
pub fn homogeneous(
    app: AppSpec,
    cores: usize,
    accesses_per_core: usize,
    seed: u64,
    scale: ScaleParams,
) -> Workload {
    let traces = (0..cores)
        .map(|c| {
            generate(
                app,
                accesses_per_core,
                (c as u64 + 1) * CORE_REGION_LINES,
                seed.wrapping_add(c as u64 * 0x9E37),
                scale,
            )
        })
        .collect();
    Workload {
        name: format!("homo-{}", app.name),
        traces,
        attack: None,
    }
}

/// All homogeneous mixes, one per application.
pub fn all_homogeneous(
    cores: usize,
    accesses_per_core: usize,
    seed: u64,
    scale: ScaleParams,
) -> Vec<Workload> {
    APPS.iter()
        .map(|&a| homogeneous(a, cores, accesses_per_core, seed, scale))
        .collect()
}

/// A heterogeneous mix: `cores` applications drawn from a rotation that
/// represents every application equally across consecutive mix indices
/// (the paper's anti-bias rule).
pub fn heterogeneous(
    mix_index: usize,
    cores: usize,
    accesses_per_core: usize,
    seed: u64,
    scale: ScaleParams,
) -> Workload {
    let n = APPS.len();
    // Deterministic balanced dealing: the draw sequence is a series of
    // independently shuffled copies of the application list, so every
    // application is represented equally across consecutive mixes (the
    // paper's anti-bias rule) while each mix stays random-looking.
    let deal = |position: usize| -> AppSpec {
        let block = position / n;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SimRng::seed_from_u64(seed ^ (block as u64).wrapping_mul(0xC0FFEE));
        rng.shuffle(&mut order);
        APPS[order[position % n]]
    };
    let traces = (0..cores)
        .map(|c| {
            let app = deal(mix_index * cores + c);
            generate(
                app,
                accesses_per_core,
                (c as u64 + 1) * CORE_REGION_LINES,
                seed.wrapping_add((mix_index * cores + c) as u64 * 0x51),
                scale,
            )
        })
        .collect();
    Workload {
        name: format!("hetero-{mix_index:02}"),
        traces,
        attack: None,
    }
}

/// A batch of heterogeneous mixes.
pub fn all_heterogeneous(
    count: usize,
    cores: usize,
    accesses_per_core: usize,
    seed: u64,
    scale: ScaleParams,
) -> Vec<Workload> {
    (0..count)
        .map(|i| heterogeneous(i, cores, accesses_per_core, seed, scale))
        .collect()
}

/// The default experiment suite: all homogeneous mixes plus `hetero`
/// heterogeneous mixes (the paper uses 36 + 36; we default smaller and
/// scale with the harness's effort knobs).
pub fn default_suite(
    hetero: usize,
    cores: usize,
    accesses_per_core: usize,
    seed: u64,
    scale: ScaleParams,
) -> Vec<Workload> {
    let mut suite = all_homogeneous(cores, accesses_per_core, seed, scale);
    suite.extend(all_heterogeneous(
        hetero,
        cores,
        accesses_per_core,
        seed,
        scale,
    ));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ScaleParams {
        ScaleParams {
            llc_lines: 16 * 1024,
            l2_lines: 512,
        }
    }

    #[test]
    fn homogeneous_has_disjoint_address_spaces() {
        let wl = homogeneous(APPS[0], 4, 500, 1, scale());
        for (c, t) in wl.traces.iter().enumerate() {
            let base = (c as u64 + 1) * CORE_REGION_LINES;
            for r in &t.records {
                let l = r.addr.line().raw();
                assert!(l >= base && l < base + CORE_REGION_LINES);
            }
        }
    }

    #[test]
    fn homogeneous_cores_use_different_seeds() {
        let wl = homogeneous(
            crate::apps::app_by_name("hotl2").unwrap(),
            2,
            500,
            1,
            scale(),
        );
        let rel: Vec<Vec<u64>> = wl
            .traces
            .iter()
            .enumerate()
            .map(|(c, t)| {
                t.records
                    .iter()
                    .map(|r| r.addr.line().raw() - (c as u64 + 1) * CORE_REGION_LINES)
                    .collect()
            })
            .collect();
        assert_ne!(rel[0], rel[1]);
    }

    #[test]
    fn heterogeneous_is_deterministic() {
        let a = heterogeneous(3, 8, 200, 9, scale());
        let b = heterogeneous(3, 8, 200, 9, scale());
        assert_eq!(a.name, b.name);
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x.records, y.records);
        }
    }

    #[test]
    fn heterogeneous_mixes_differ() {
        let a = heterogeneous(0, 8, 200, 9, scale());
        let b = heterogeneous(1, 8, 200, 9, scale());
        let apps_a: Vec<_> = a.traces.iter().map(|t| t.app_name).collect();
        let apps_b: Vec<_> = b.traces.iter().map(|t| t.app_name).collect();
        assert_ne!(apps_a, apps_b);
    }

    #[test]
    fn rotation_represents_every_app_equally() {
        // Over APPS.len() consecutive 8-core mixes, each app appears the
        // same number of times (8 * 12 / 12 = 8).
        let mixes = all_heterogeneous(APPS.len(), 8, 10, 5, scale());
        let mut counts = std::collections::HashMap::new();
        for m in &mixes {
            for t in &m.traces {
                *counts.entry(t.app_name).or_insert(0) += 1;
            }
        }
        assert_eq!(counts.len(), APPS.len());
        assert!(counts.values().all(|&c| c == 8), "{counts:?}");
    }

    #[test]
    fn default_suite_combines_both() {
        let suite = default_suite(4, 2, 50, 1, scale());
        assert_eq!(suite.len(), APPS.len() + 4);
    }
}
