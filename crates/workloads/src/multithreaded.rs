//! Multithreaded workload generators: shared-address-space stand-ins
//! for the paper's PARSEC (canneal, facesim, vips), SPEC OMP
//! (316.applu), and TPC-E-on-MySQL workloads (Section IV).
//!
//! Sharing structure, not instruction fidelity, is what the evaluation
//! depends on: which blocks are core-private, which are read-shared,
//! which are write-shared, and how much LLC reuse each class sees.

use crate::{CoreTrace, ScaleParams, TraceRecord, Workload};
use ziv_common::{Addr, SimRng};

/// Base line address of the shared heap.
const SHARED_BASE: u64 = 1 << 36;

fn record(line: u64, pc: u64, is_write: bool, gap: u8) -> TraceRecord {
    TraceRecord {
        addr: Addr::new(line << 6),
        pc,
        is_write,
        gap,
    }
}

/// canneal-like: random reads over a large shared graph (~2× LLC) with
/// occasional writes (the swap phase); very low locality, so little
/// sensitivity to inclusion victims but heavy memory traffic.
pub fn canneal(cores: usize, accesses_per_core: usize, seed: u64, scale: ScaleParams) -> Workload {
    let graph = (scale.llc_lines * 2).max(256);
    let traces = (0..cores)
        .map(|c| {
            let mut rng = SimRng::seed_from_u64(seed ^ (c as u64 * 0xCA77EA1));
            let records = (0..accesses_per_core)
                .map(|_| {
                    let line = SHARED_BASE + rng.below(graph);
                    record(
                        line,
                        0x20_0000,
                        rng.chance(0.10),
                        rng.geometric(0.25, 255) as u8,
                    )
                })
                .collect();
            CoreTrace {
                records,
                overlap: 0.30,
                app_name: "canneal",
            }
        })
        .collect();
    Workload {
        name: "canneal".into(),
        traces,
        attack: None,
    }
}

/// facesim-like: per-core blocked regions with heavy LLC reuse plus a
/// read-shared model region. The paper notes facesim has many LLC
/// reuses that QBS/SHARP sacrifice, hurting performance.
pub fn facesim(cores: usize, accesses_per_core: usize, seed: u64, scale: ScaleParams) -> Workload {
    let per_core = ((scale.llc_lines as f64 * 0.8 / cores as f64) as u64).max(64);
    let shared = (scale.llc_lines / 8).max(64);
    let traces = (0..cores)
        .map(|c| {
            let mut rng = SimRng::seed_from_u64(seed ^ (c as u64 * 0xFACE));
            let base = SHARED_BASE + (c as u64 + 1) * (per_core * 4);
            let mut pos = 0u64;
            let records = (0..accesses_per_core)
                .map(|_| {
                    let gap = rng.geometric(0.33, 255) as u8;
                    if rng.chance(0.15) {
                        // Read-shared model data.
                        record(SHARED_BASE + rng.below(shared), 0x21_0000, false, gap)
                    } else {
                        // Private blocked sweep with immediate reuse.
                        let l = base + pos;
                        pos = (pos + if rng.chance(0.5) { 0 } else { 1 }) % per_core;
                        record(l, 0x21_0004, rng.chance(0.25), gap)
                    }
                })
                .collect();
            CoreTrace {
                records,
                overlap: 0.50,
                app_name: "facesim",
            }
        })
        .collect();
    Workload {
        name: "facesim".into(),
        traces,
        attack: None,
    }
}

/// vips-like image pipeline: cores stream a read-shared input image and
/// write private output bands; moderate LLC reuse on shared tiles.
pub fn vips(cores: usize, accesses_per_core: usize, seed: u64, scale: ScaleParams) -> Workload {
    let image = (scale.llc_lines * 3 / 5).max(256);
    let band = (image / cores as u64).max(32);
    let traces = (0..cores)
        .map(|c| {
            let mut rng = SimRng::seed_from_u64(seed ^ (c as u64 * 0x715));
            let out_base = SHARED_BASE + 8 * image + c as u64 * band * 2;
            let mut in_pos = c as u64 * band;
            let mut out_pos = 0u64;
            let records = (0..accesses_per_core)
                .map(|i| {
                    let gap = rng.geometric(0.33, 255) as u8;
                    if i % 3 == 2 {
                        let l = out_base + out_pos;
                        out_pos = (out_pos + 1) % band;
                        record(l, 0x22_0008, true, gap)
                    } else {
                        let l = SHARED_BASE + (in_pos % image);
                        // Re-read neighborhoods (convolution window).
                        if i % 3 == 1 {
                            in_pos += 1;
                        }
                        record(l, 0x22_0000, false, gap)
                    }
                })
                .collect();
            CoreTrace {
                records,
                overlap: 0.60,
                app_name: "vips",
            }
        })
        .collect();
    Workload {
        name: "vips".into(),
        traces,
        attack: None,
    }
}

/// 316.applu-like: stencil sweeps over a block-partitioned shared grid
/// with boundary sharing between neighbor cores; the multithreaded
/// workload the paper finds most sensitive to inclusion victims.
pub fn applu(cores: usize, accesses_per_core: usize, seed: u64, scale: ScaleParams) -> Workload {
    let grid = (scale.llc_lines * 6 / 5).max(256);
    let part = grid / cores as u64;
    let hot = (scale.l2_lines / 2).max(8);
    let traces = (0..cores)
        .map(|c| {
            let mut rng = SimRng::seed_from_u64(seed ^ (c as u64 * 0xAB1E));
            let lo = c as u64 * part;
            let mut pos = 0u64;
            let records = (0..accesses_per_core)
                .map(|i| {
                    let gap = rng.geometric(0.33, 255) as u8;
                    match i % 5 {
                        // Hot per-core coefficients (private-cache
                        // resident: the inclusion-victim victim).
                        0 | 2 => record(
                            SHARED_BASE + 4 * grid + c as u64 * hot * 2 + rng.below(hot),
                            0x23_0000,
                            false,
                            gap,
                        ),
                        // Boundary exchange with the neighbor partition.
                        4 => {
                            let nb = (c + 1) % cores;
                            record(
                                SHARED_BASE + nb as u64 * part + rng.below(16),
                                0x23_0008,
                                false,
                                gap,
                            )
                        }
                        // Sweep over the own partition (writes update).
                        k => {
                            let l = SHARED_BASE + lo + pos;
                            if k == 3 {
                                pos = (pos + 1) % part;
                            }
                            record(l, 0x23_0004, k == 1, gap)
                        }
                    }
                })
                .collect();
            CoreTrace {
                records,
                overlap: 0.50,
                app_name: "applu",
            }
        })
        .collect();
    Workload {
        name: "316.applu".into(),
        traces,
        attack: None,
    }
}

/// TPC-E-like OLTP: zipf reads over a large shared database, per-core
/// private log writes, and a small hot read/write metadata region.
/// The paper runs this on a 128-core system.
pub fn tpce(cores: usize, accesses_per_core: usize, seed: u64, scale: ScaleParams) -> Workload {
    let db = (scale.llc_lines * 4).max(1024);
    let meta = 64u64;
    // Zipf CDF over the database pages.
    let n = db as usize;
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += 1.0 / ((i + 1) as f64).powf(0.8);
        cdf.push(total);
    }
    let traces = (0..cores)
        .map(|c| {
            let mut rng = SimRng::seed_from_u64(seed ^ (c as u64 * 0x79CE));
            let log_base = SHARED_BASE + 8 * db + c as u64 * 256;
            let mut log_pos = 0u64;
            let records = (0..accesses_per_core)
                .map(|_| {
                    let gap = rng.geometric(0.2, 255) as u8;
                    let r = rng.next_f64();
                    if r < 0.70 {
                        let u = rng.next_f64() * total;
                        let idx = cdf.partition_point(|&x| x < u).min(n - 1) as u64;
                        record(SHARED_BASE + idx, 0x24_0000, rng.chance(0.1), gap)
                    } else if r < 0.85 {
                        let l = log_base + log_pos;
                        log_pos = (log_pos + 1) % 256;
                        record(l, 0x24_0004, true, gap)
                    } else {
                        record(
                            SHARED_BASE + 16 * db + rng.below(meta),
                            0x24_0008,
                            rng.chance(0.3),
                            gap,
                        )
                    }
                })
                .collect();
            CoreTrace {
                records,
                overlap: 0.35,
                app_name: "tpce",
            }
        })
        .collect();
    Workload {
        name: "TPC-E".into(),
        traces,
        attack: None,
    }
}

/// The paper's Fig 16/17 multithreaded set at `cores` cores (canneal,
/// facesim, vips, 316.applu). TPC-E is separate (128 cores).
pub fn parsec_omp_suite(
    cores: usize,
    accesses_per_core: usize,
    seed: u64,
    scale: ScaleParams,
) -> Vec<Workload> {
    vec![
        canneal(cores, accesses_per_core, seed, scale),
        facesim(cores, accesses_per_core, seed, scale),
        vips(cores, accesses_per_core, seed, scale),
        applu(cores, accesses_per_core, seed, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ScaleParams {
        ScaleParams {
            llc_lines: 2048,
            l2_lines: 128,
        }
    }

    #[test]
    fn suite_generates_all_four() {
        let suite = parsec_omp_suite(4, 500, 1, scale());
        assert_eq!(suite.len(), 4);
        for wl in &suite {
            assert_eq!(wl.cores(), 4);
            assert_eq!(wl.total_accesses(), 2_000);
        }
    }

    #[test]
    fn canneal_shares_the_graph() {
        let wl = canneal(4, 2_000, 2, scale());
        // The same shared lines must appear in multiple cores' traces.
        let sets: Vec<std::collections::HashSet<u64>> = wl
            .traces
            .iter()
            .map(|t| t.records.iter().map(|r| r.addr.line().raw()).collect())
            .collect();
        let shared01 = sets[0].intersection(&sets[1]).count();
        assert!(
            shared01 > 10,
            "cores must share graph lines, got {shared01}"
        );
    }

    #[test]
    fn vips_output_bands_are_private() {
        let wl = vips(2, 3_000, 3, scale());
        let writes: Vec<std::collections::HashSet<u64>> = wl
            .traces
            .iter()
            .map(|t| {
                t.records
                    .iter()
                    .filter(|r| r.is_write)
                    .map(|r| r.addr.line().raw())
                    .collect()
            })
            .collect();
        assert_eq!(
            writes[0].intersection(&writes[1]).count(),
            0,
            "bands must not overlap"
        );
    }

    #[test]
    fn applu_has_neighbor_sharing() {
        let wl = applu(4, 5_000, 4, scale());
        let sets: Vec<std::collections::HashSet<u64>> = wl
            .traces
            .iter()
            .map(|t| t.records.iter().map(|r| r.addr.line().raw()).collect())
            .collect();
        assert!(
            sets[0].intersection(&sets[1]).count() > 0,
            "boundary lines shared"
        );
    }

    #[test]
    fn tpce_scales_to_many_cores() {
        let wl = tpce(32, 200, 5, scale());
        assert_eq!(wl.cores(), 32);
        // Hot metadata is accessed by many cores.
        let meta_base = SHARED_BASE + 16 * (scale().llc_lines * 4).max(1024);
        let cores_touching_meta = wl
            .traces
            .iter()
            .filter(|t| {
                t.records.iter().any(|r| {
                    let l = r.addr.line().raw();
                    l >= meta_base && l < meta_base + 64
                })
            })
            .count();
        assert!(cores_touching_meta > 16);
    }

    #[test]
    fn deterministic_generation() {
        let a = applu(2, 1_000, 7, scale());
        let b = applu(2, 1_000, 7, scale());
        assert_eq!(a.traces[0].records, b.traces[0].records);
    }
}
