//! # ziv-workloads
//!
//! Synthetic workload generators standing in for the paper's SPEC CPU
//! 2017 multiprogrammed mixes, PARSEC / SPEC OMP multithreaded
//! applications, and the TPC-E server trace (DESIGN.md §5.2).
//!
//! Each generator reproduces an access-pattern *class* the paper's
//! analysis depends on:
//!
//! - **circular patterns** whose per-set reuse distance exceeds the LLC
//!   associativity — the pattern Section I identifies as the driver of
//!   inclusion victims under MIN-approximating policies;
//! - **streaming** with no reuse (cache-averse traffic that Hawkeye
//!   learns to classify);
//! - **private-cache-resident working sets** (the *victims* of
//!   inclusion: performance collapses when their L1/L2 blocks are
//!   back-invalidated);
//! - **irregular / pointer-chasing / zipf** footprints between L2 and
//!   memory;
//! - **shared-data** patterns (reader/writer sharing) for the
//!   multithreaded study.
//!
//! All generators are seeded and deterministic.
//!
//! # Examples
//!
//! ```
//! use ziv_workloads::{ScaleParams, mixes};
//!
//! let scale = ScaleParams { llc_lines: 16 * 1024, l2_lines: 512 };
//! let wl = mixes::homogeneous(ziv_workloads::apps::APPS[0], 4, 1_000, 42, scale);
//! assert_eq!(wl.traces.len(), 4);
//! assert_eq!(wl.traces[0].records.len(), 1_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod attack;
pub mod mixes;
pub mod multithreaded;
pub mod recipe;
pub mod trace_io;

pub use attack::{AttackRecipe, AttackScenario};
pub use recipe::{MtApp, Recipe, RecipeKind};

use ziv_common::Addr;

/// One memory access in a core's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Byte address accessed.
    pub addr: Addr,
    /// Synthesized program counter of the access.
    pub pc: u64,
    /// Whether this is a store.
    pub is_write: bool,
    /// Non-memory instructions executed before this access.
    pub gap: u8,
}

/// The access stream of one core, with its latency-hiding factor.
#[derive(Debug, Clone)]
pub struct CoreTrace {
    /// The accesses, in program order.
    pub records: Vec<TraceRecord>,
    /// Fraction of miss latency hidden by memory-level parallelism
    /// (0 = fully exposed dependent loads, 0.8 = prefetch-friendly
    /// streaming). Stands in for the paper's out-of-order cores
    /// (DESIGN.md §5.1).
    pub overlap: f64,
    /// Short name of the generating application.
    pub app_name: &'static str,
}

impl CoreTrace {
    /// Total instructions represented by the trace (1 per access plus
    /// the gaps).
    pub fn instructions(&self) -> u64 {
        self.records.iter().map(|r| 1 + r.gap as u64).sum()
    }
}

/// The adversarial roles of an attack workload (see [`attack`]): which
/// cores attack, which are victims, and one representative line per
/// probed LLC set. Carried alongside the traces so the leakage
/// observatory can attribute back-invalidations; `None` for every
/// non-attack workload, and never digested — roles are derived from
/// the recipe, not extra semantic state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackPlan {
    /// Cores running the attacker pattern.
    pub attacker_cores: Vec<usize>,
    /// Cores running the secret-dependent victim pattern.
    pub victim_cores: Vec<usize>,
    /// One representative raw line address per probed LLC set (lines
    /// congruent to these modulo the set count map to probed sets).
    pub probe_lines: Vec<u64>,
}

/// A complete workload: one trace per core plus a name.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (used in figure output).
    pub name: String,
    /// Per-core traces.
    pub traces: Vec<CoreTrace>,
    /// Adversarial roles, for attack workloads only.
    pub attack: Option<AttackPlan>,
}

impl Workload {
    /// Number of cores this workload drives.
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Total accesses across cores.
    pub fn total_accesses(&self) -> u64 {
        self.traces.iter().map(|t| t.records.len() as u64).sum()
    }

    /// The workload's dominant phase period in **global** stream
    /// accesses, when any constituent app has deterministic segment
    /// structure ([`apps::AppClass::phase_period`]): the longest
    /// per-core period scaled by the core count (the driver's
    /// lagging-core interleave issues roughly one access per core per
    /// global step). `None` for phase-free workloads, and for traces
    /// not generated from the named app suite. Samplers use this to
    /// keep their period off an exact multiple of the program phase —
    /// an aligned period would pin every timed interval to the same
    /// phase offset and bias the interval estimators.
    pub fn phase_period(&self, scale: ScaleParams) -> Option<u64> {
        self.traces
            .iter()
            .filter_map(|t| apps::app_by_name(t.app_name).and_then(|a| a.phase_period(scale)))
            .max()
            .map(|p| p * self.cores() as u64)
    }
}

/// Capacity parameters workload footprints scale against, so the same
/// pattern classes stress a full-size or 1/8-scale hierarchy equally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleParams {
    /// Total LLC capacity in lines.
    pub llc_lines: u64,
    /// Per-core L2 capacity in lines.
    pub l2_lines: u64,
}

impl ScaleParams {
    /// Derives scale parameters from a system configuration.
    pub fn from_system(cfg: &ziv_common::config::SystemConfig) -> Self {
        ScaleParams {
            llc_lines: cfg.llc.total_blocks(),
            l2_lines: cfg.l2.blocks(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_trace_counts_instructions() {
        let t = CoreTrace {
            records: vec![
                TraceRecord {
                    addr: Addr::new(0),
                    pc: 0,
                    is_write: false,
                    gap: 3,
                },
                TraceRecord {
                    addr: Addr::new(64),
                    pc: 0,
                    is_write: false,
                    gap: 0,
                },
            ],
            overlap: 0.5,
            app_name: "test",
        };
        assert_eq!(t.instructions(), 5);
    }

    #[test]
    fn workload_phase_period_scales_per_core_periods_to_the_global_stream() {
        let scale = ScaleParams {
            llc_lines: 16 * 1024,
            l2_lines: 512,
        };
        let phased = mixes::homogeneous(apps::app_by_name("scanphase").unwrap(), 4, 100, 1, scale);
        assert_eq!(phased.phase_period(scale), Some(4 * 3_000));
        let flat = mixes::homogeneous(apps::app_by_name("hotl2").unwrap(), 4, 100, 1, scale);
        assert_eq!(flat.phase_period(scale), None);
    }

    #[test]
    fn scale_from_system() {
        let s = ScaleParams::from_system(&ziv_common::config::SystemConfig::scaled());
        assert_eq!(s.llc_lines, 16 * 1024);
        assert_eq!(s.l2_lines, 512);
    }
}
