//! Side-channel attack workload generators: the security-evaluation
//! counterpart of the performance mixes.
//!
//! The paper's mechanism is also a security primitive: an inclusive
//! LLC eviction reaches *into* other cores' private caches, so a core
//! that can force evictions in chosen LLC sets learns when a co-runner
//! re-touches lines mapping there (prime+probe), and can repeatedly
//! flush a victim's hot lines (SHARP's cross-core eviction attack).
//! ZIV's zero-inclusion-victim guarantee closes exactly this channel.
//!
//! This module builds deterministic attacker/victim co-schedules:
//!
//! - **core 0 — attacker**: constructs eviction sets for a seed-chosen
//!   window of LLC sets (lines congruent modulo the number of LLC
//!   sets, [`apps::LLC_WAYS`]-way associativity assumed) and either
//!   runs prime/probe rounds ([`AttackScenario::PrimeProbe`]) or
//!   hammers the sets continuously ([`AttackScenario::Hammer`]);
//! - **core 1 — victim**: a private-cache-resident working set whose
//!   per-set activity is gated by secret bits derived from the seed —
//!   the information the attacker tries to recover;
//! - **cores 2+ — background noise**: deterministic streaming traffic
//!   confined to congruence classes away from the probed window, so it
//!   loads the machine without polluting the measured channel.
//!
//! ## Why the attacker flushes its own copies
//!
//! A sparse directory tracks only *privately cached* lines, and its
//! slices here index with the same bits as the LLC but with half the
//! associativity. If the attacker simply kept its eviction set
//! private-cache resident, its own directory entries would overflow
//! the probed set's directory slice and tear the victim's entry (and
//! with it the victim's private copy) out through the *directory*
//! eviction path — a different channel that fires before the inclusive
//! LLC eviction ever catches the victim, and one ZIV does not need to
//! close. So after touching each eviction-set line the attacker
//! immediately touches [`FLUSH_DEPTH`] *flusher* lines that share its
//! private L1/L2 sets but map to different LLC sets: the eviction-set
//! line leaves the attacker's private caches (freeing its directory
//! entry) while still occupying its LLC way. The probed LLC set fills
//! with attacker lines nobody caches privately, the victim's directory
//! entry survives, and the one line the inclusive eviction tears out
//! of a core is the victim's — the channel the paper closes.
//!
//! Every workload carries an [`AttackPlan`] describing the roles and
//! the probed sets; the leakage observatory (`ziv-core`) uses it to
//! attribute back-invalidations to attacker-observable signal vs
//! noise. Generation is fully determined by `(recipe, cores,
//! accesses_per_core, seed, scale)` — the same contract as every other
//! recipe kind, so attack cells cache and resume like any other.

use crate::{apps, AttackPlan, CoreTrace, ScaleParams, TraceRecord, Workload};
use ziv_common::{Addr, SimRng};

/// Disjoint per-core line regions (mirrors `mixes::CORE_REGION_LINES`;
/// a power of two, so region bases preserve set congruence).
const CORE_REGION_LINES: u64 = 1 << 30;

/// Lines per eviction set: associativity plus margin, so one prime
/// pass displaces every other line in the target set even under
/// insertion-policy noise.
pub const EVICTION_SET_LINES: u64 = apps::LLC_WAYS + 2;

/// Private-cache associativity (L1 and L2 are both 8-way at every
/// scale; see `SystemConfig`). The flush stride below derives the L2
/// set count from it.
const PRIVATE_WAYS: u64 = 8;

/// Flusher accesses issued after each eviction-set touch: enough
/// same-private-set traffic to walk the touched line through the
/// attacker's 8-way L1 *and* 8-way L2 within a step or two, so its
/// directory entry is freed almost immediately (see the module doc).
pub const FLUSH_DEPTH: u64 = 12;

/// Consecutive victim accesses per secret-bit step (enough reuse to
/// keep the hot line private-cache resident between attacker rounds).
const VICTIM_BURST: usize = 4;

/// Victim think time between accesses. The victim's working set is
/// private-cache resident, so without think time it would lap its
/// trace far faster than the (always-missing) attacker and the driver
/// would park it early, emptying the co-run window; this keeps the two
/// cores co-resident for the whole measurement.
const VICTIM_GAP: u8 = 30;

/// The attack pattern the attacker core runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackScenario {
    /// Classic prime+probe: fill the target sets with the attacker's
    /// eviction sets, idle, then re-probe and infer victim activity
    /// from probe misses (which the latency observatory distinguishes).
    PrimeProbe,
    /// Targeted back-invalidation eviction attack (SHARP's adversary):
    /// continuously hammer the victim's hot sets so every victim line
    /// reaching the LLC is evicted — and, under inclusion, torn out of
    /// the victim's private caches.
    Hammer,
}

impl AttackScenario {
    /// Every scenario, in discriminant order.
    pub const ALL: [AttackScenario; 2] = [AttackScenario::PrimeProbe, AttackScenario::Hammer];

    /// The CLI / recipe / workload name fragment.
    pub fn name(self) -> &'static str {
        match self {
            AttackScenario::PrimeProbe => "primeprobe",
            AttackScenario::Hammer => "hammer",
        }
    }

    /// Looks a scenario up by its CLI name.
    pub fn by_name(name: &str) -> Option<AttackScenario> {
        AttackScenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Stable digest discriminant.
    pub fn discriminant(self) -> u64 {
        match self {
            AttackScenario::PrimeProbe => 0,
            AttackScenario::Hammer => 1,
        }
    }
}

/// The hashable description of an attack workload: scenario plus how
/// many LLC sets the attacker targets. Embedded in
/// [`RecipeKind::Attack`](crate::RecipeKind::Attack), so attack cells
/// are content-addressed like every other campaign cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackRecipe {
    /// The attack pattern.
    pub scenario: AttackScenario,
    /// Number of LLC sets the attacker builds eviction sets for
    /// (clamped at generation time: below the flusher stride and to
    /// half the machine's sets).
    pub target_sets: u32,
}

impl AttackRecipe {
    /// A prime+probe recipe over `target_sets` LLC sets.
    pub fn prime_probe(target_sets: u32) -> Self {
        AttackRecipe {
            scenario: AttackScenario::PrimeProbe,
            target_sets,
        }
    }

    /// A hammer recipe over `target_sets` LLC sets.
    pub fn hammer(target_sets: u32) -> Self {
        AttackRecipe {
            scenario: AttackScenario::Hammer,
            target_sets,
        }
    }
}

/// Builds the attack co-schedule: attacker on core 0, victim on core
/// 1, background noise on cores 2+. Deterministic in every argument.
///
/// # Panics
///
/// Panics if `cores < 2` (an attack needs an attacker and a victim) or
/// if `scale.llc_lines` is not a multiple of [`apps::LLC_WAYS`].
pub fn generate(
    recipe: AttackRecipe,
    cores: usize,
    accesses_per_core: usize,
    seed: u64,
    scale: ScaleParams,
) -> Workload {
    assert!(cores >= 2, "an attack workload needs at least 2 cores");
    assert_eq!(
        scale.llc_lines % apps::LLC_WAYS,
        0,
        "LLC lines must be a multiple of the associativity"
    );
    let total_sets = scale.llc_lines / apps::LLC_WAYS;
    // Flusher stride: the attacker's L2 set count. Adding it to a line
    // preserves the L1 and L2 set index but moves the LLC set, which
    // is exactly what a flusher needs (module doc).
    let flush_stride = (scale.l2_lines / PRIVATE_WAYS).max(1);
    assert!(
        FLUSH_DEPTH * flush_stride < total_sets,
        "flushers must stay off the probed congruence classes"
    );
    // Target window: clamp below the flusher stride (so no flusher
    // class can wrap back into the window) and to half the machine's
    // sets (so the victim's cover lines stay off the probed sets).
    let max_window = (flush_stride - 1).min(total_sets / 2).max(1);
    let count = u64::from(recipe.target_sets).clamp(1, max_window);
    let mut rng = SimRng::seed_from_u64(seed ^ 0xA77A_C4ED_5EC0_11D5);
    let start = rng.below(total_sets);
    let targets: Vec<u64> = (0..count).map(|i| (start + i) % total_sets).collect();
    // The victim's secret: one bit per target set, derived from the
    // seed. This is what the attacker's probes try to recover.
    let secret: Vec<bool> = targets.iter().map(|_| rng.chance(0.5)).collect();

    let attacker = match recipe.scenario {
        AttackScenario::PrimeProbe => prime_probe_trace(
            &targets,
            total_sets,
            flush_stride,
            accesses_per_core,
            &mut rng.fork(1),
        ),
        AttackScenario::Hammer => hammer_trace(
            &targets,
            total_sets,
            flush_stride,
            accesses_per_core,
            &mut rng.fork(2),
        ),
    };
    let victim = victim_trace(
        &targets,
        &secret,
        total_sets,
        accesses_per_core,
        &mut rng.fork(3),
    );

    let mut traces = vec![attacker, victim];
    for c in 2..cores {
        traces.push(noise_trace(
            &targets,
            total_sets,
            accesses_per_core,
            c as u64 * CORE_REGION_LINES,
            &mut rng.fork(4 + c as u64),
        ));
    }

    Workload {
        name: format!("attack-{}", recipe.scenario.name()),
        traces,
        attack: Some(AttackPlan {
            attacker_cores: vec![0],
            victim_cores: vec![1],
            probe_lines: targets,
        }),
    }
}

fn push(records: &mut Vec<TraceRecord>, line: u64, pc: u64, is_write: bool, gap: u8) {
    records.push(TraceRecord {
        addr: Addr::new(line << 6),
        pc,
        is_write,
        gap,
    });
}

/// Pushes one eviction-set access followed by its flusher run: the
/// [`FLUSH_DEPTH`] lines sharing the target's private L1/L2 sets but
/// mapping `flush_stride` LLC sets apart, which walk the just-touched
/// line out of the attacker's private caches (module doc).
#[allow(clippy::too_many_arguments)]
fn push_flushed(
    records: &mut Vec<TraceRecord>,
    t: u64,
    line: u64,
    flush_stride: u64,
    pc: u64,
    is_write: bool,
    gap: u8,
    len: usize,
) -> bool {
    if records.len() >= len {
        return false;
    }
    push(records, line, pc, is_write, gap);
    for j in 1..=FLUSH_DEPTH {
        if records.len() >= len {
            return false;
        }
        push(records, t + j * flush_stride, 0x41_0F00, false, 0);
    }
    true
}

/// Prime+probe rounds from the attacker's region (core 0, base 0):
/// prime every target set with the full eviction set, idle briefly,
/// then probe one line per way. Every eviction-set touch is followed
/// by a flusher run so the attacker's LLC occupancy carries no
/// directory entries.
fn prime_probe_trace(
    targets: &[u64],
    total_sets: u64,
    flush_stride: u64,
    len: usize,
    rng: &mut SimRng,
) -> CoreTrace {
    let mut records = Vec::with_capacity(len);
    'outer: loop {
        // Prime pass: install the eviction sets.
        for &t in targets {
            for k in 0..EVICTION_SET_LINES {
                let line = t + k * total_sets;
                if !push_flushed(
                    &mut records,
                    t,
                    line,
                    flush_stride,
                    0x41_0000,
                    false,
                    0,
                    len,
                ) {
                    break 'outer;
                }
            }
        }
        // Idle window the victim runs in: modeled as a long gap on one
        // flusher-class line (off the probed sets, so the idle access
        // itself adds no prime traffic).
        if records.len() >= len {
            break;
        }
        let idle = targets[rng.below_usize(targets.len())];
        push(&mut records, idle + flush_stride, 0x41_0100, false, 200);
        // Probe pass: re-read one line per way; a probe served from
        // DRAM signals victim (or noise) activity in the set.
        for &t in targets {
            for k in 0..apps::LLC_WAYS {
                let line = t + k * total_sets;
                if !push_flushed(
                    &mut records,
                    t,
                    line,
                    flush_stride,
                    0x41_0200,
                    false,
                    1,
                    len,
                ) {
                    break 'outer;
                }
            }
        }
    }
    CoreTrace {
        records,
        overlap: 0.1, // probes are dependent, latency-measuring loads
        app_name: "pp-attacker",
    }
}

/// Continuous eviction hammer from the attacker's region: stream over
/// every eviction-set line with no think time, maximizing the rate of
/// target-set evictions (and, under inclusion, of back-invalidations
/// tearing the victim's hot lines out of its private caches). Flushed
/// like the prime+probe attacker, for the same directory reason.
fn hammer_trace(
    targets: &[u64],
    total_sets: u64,
    flush_stride: u64,
    len: usize,
    rng: &mut SimRng,
) -> CoreTrace {
    let mut records = Vec::with_capacity(len);
    'outer: while records.len() < len {
        for &t in targets {
            for k in 0..EVICTION_SET_LINES {
                // Occasional writes keep the hammered lines dirty, so
                // their own evictions also cost writebacks.
                let is_write = rng.chance(0.1);
                let line = t + k * total_sets;
                if !push_flushed(
                    &mut records,
                    t,
                    line,
                    flush_stride,
                    0x41_0300,
                    is_write,
                    0,
                    len,
                ) {
                    break 'outer;
                }
            }
        }
    }
    CoreTrace {
        records,
        overlap: 0.6, // an eviction hammer streams with high MLP
        app_name: "hammer-attacker",
    }
}

/// The victim (core 1, its own region): bursts over per-target-set hot
/// lines, gated by the secret bit of the set being visited. Cover
/// bursts over sets outside the probed window keep the access volume
/// independent of the secret — only *where* the victim touches leaks.
fn victim_trace(
    targets: &[u64],
    secret: &[bool],
    total_sets: u64,
    len: usize,
    rng: &mut SimRng,
) -> CoreTrace {
    let base = CORE_REGION_LINES;
    let mut records = Vec::with_capacity(len);
    let mut i = 0usize;
    while records.len() < len {
        let t = targets[i % targets.len()];
        let hot = secret[i % targets.len()];
        // Hot line in the probed set (signal) or a cover line one
        // window along (outside every probed set: disjoint by clamp).
        let line = if hot {
            base + t
        } else {
            base + ((t + targets.len() as u64) % total_sets) + total_sets
        };
        for _ in 0..VICTIM_BURST {
            if records.len() >= len {
                break;
            }
            let is_write = rng.chance(0.2);
            push(&mut records, line, 0x56_0000, is_write, VICTIM_GAP);
        }
        i += 1;
    }
    CoreTrace {
        records,
        overlap: 0.1, // the secret-dependent loads are dependent
        app_name: "victim",
    }
}

/// Background noise (cores 2+, their own regions): a write-mixed
/// stream over a band of congruence classes placed well away from the
/// probed window *and* its directory sets. The footprint (two rows of
/// half-the-remaining classes) exceeds a core's private capacity, so
/// the stream misses continuously — real memory pressure — without
/// allocating directory entries in the probed sets, which would
/// re-open the directory-eviction channel the attacker just closed
/// for itself (module doc).
fn noise_trace(
    targets: &[u64],
    total_sets: u64,
    len: usize,
    base: u64,
    rng: &mut SimRng,
) -> CoreTrace {
    const NOISE_ROWS: u64 = 2;
    let count = targets.len() as u64;
    let free = total_sets - count;
    let span = (free / 2).max(1);
    let margin = free / 4;
    let first = (targets[0] + count + margin) % total_sets;
    let mut records = Vec::with_capacity(len);
    for i in 0..len as u64 {
        let class = (first + (i % span)) % total_sets;
        let row = (i / span) % NOISE_ROWS;
        let is_write = rng.chance(0.1);
        push(
            &mut records,
            base + row * total_sets + class,
            0x4E_0000,
            is_write,
            1,
        );
    }
    CoreTrace {
        records,
        overlap: 0.5, // streaming noise overlaps its misses
        app_name: "noise-stream",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ScaleParams {
        ScaleParams {
            llc_lines: 16 * 1024,
            l2_lines: 512,
        }
    }

    #[test]
    fn generates_all_scenarios_deterministically() {
        for scenario in AttackScenario::ALL {
            let r = AttackRecipe {
                scenario,
                target_sets: 8,
            };
            let a = generate(r, 4, 2_000, 9, scale());
            let b = generate(r, 4, 2_000, 9, scale());
            assert_eq!(a.name, format!("attack-{}", scenario.name()));
            assert_eq!(a.cores(), 4);
            for (x, y) in a.traces.iter().zip(&b.traces) {
                assert_eq!(x.records, y.records, "{}", scenario.name());
            }
            assert_eq!(a.attack.as_ref().unwrap(), b.attack.as_ref().unwrap());
        }
    }

    #[test]
    fn plan_names_roles_and_targets() {
        let wl = generate(AttackRecipe::prime_probe(8), 3, 1_000, 5, scale());
        let plan = wl.attack.as_ref().expect("attack plan attached");
        assert_eq!(plan.attacker_cores, vec![0]);
        assert_eq!(plan.victim_cores, vec![1]);
        assert_eq!(plan.probe_lines.len(), 8);
        let total_sets = scale().llc_lines / apps::LLC_WAYS;
        for &l in &plan.probe_lines {
            assert!(l < total_sets);
        }
    }

    #[test]
    fn attacker_lines_are_congruent_or_flushers() {
        let sc = scale();
        let total_sets = sc.llc_lines / apps::LLC_WAYS;
        let flush_stride = sc.l2_lines / 8;
        for recipe in [AttackRecipe::hammer(4), AttackRecipe::prime_probe(4)] {
            let wl = generate(recipe, 2, 3_000, 11, sc);
            let plan = wl.attack.as_ref().unwrap();
            for r in &wl.traces[0].records {
                let residue = r.addr.line().raw() % total_sets;
                let probed = plan.probe_lines.contains(&residue);
                // A flusher (or idle) line sits a multiple of the
                // flush stride past some target: same private L1/L2
                // sets, different LLC set.
                let flusher = plan.probe_lines.iter().any(|&t| {
                    let d = (residue + total_sets - t) % total_sets;
                    d > 0 && d.is_multiple_of(flush_stride) && d / flush_stride <= FLUSH_DEPTH
                });
                assert!(
                    probed || flusher,
                    "attacker line in neither the window nor a flusher class"
                );
                assert!(
                    !(probed && flusher),
                    "flusher class wrapped into the probed window"
                );
            }
        }
    }

    #[test]
    fn noise_cores_avoid_the_probed_classes() {
        let wl = generate(AttackRecipe::prime_probe(8), 4, 2_000, 17, scale());
        let plan = wl.attack.as_ref().unwrap();
        let total_sets = scale().llc_lines / apps::LLC_WAYS;
        for trace in &wl.traces[2..] {
            assert_eq!(trace.app_name, "noise-stream");
            for r in &trace.records {
                let residue = r.addr.line().raw() % total_sets;
                assert!(
                    !plan.probe_lines.contains(&residue),
                    "noise line landed in a probed set"
                );
            }
        }
    }

    #[test]
    fn victim_hot_lines_hit_probed_sets_and_cover_lines_do_not() {
        let wl = generate(AttackRecipe::prime_probe(8), 2, 4_000, 13, scale());
        let plan = wl.attack.as_ref().unwrap();
        let total_sets = scale().llc_lines / apps::LLC_WAYS;
        let mut in_window = 0usize;
        let mut outside = 0usize;
        for r in &wl.traces[1].records {
            let line = r.addr.line().raw();
            assert!(line >= CORE_REGION_LINES, "victim stays in its region");
            if plan.probe_lines.contains(&(line % total_sets)) {
                in_window += 1;
            } else {
                outside += 1;
            }
        }
        assert!(in_window > 0, "some secret bits are 1");
        assert!(outside > 0, "some secret bits are 0");
    }

    #[test]
    fn seeds_move_the_target_window() {
        let a = generate(AttackRecipe::prime_probe(8), 2, 100, 1, scale());
        let b = generate(AttackRecipe::prime_probe(8), 2, 100, 2, scale());
        assert_ne!(a.attack.unwrap().probe_lines, b.attack.unwrap().probe_lines);
    }

    #[test]
    fn target_count_is_clamped() {
        let flush_stride = scale().l2_lines / 8;
        let wl = generate(AttackRecipe::hammer(1_000_000), 2, 100, 1, scale());
        assert_eq!(
            wl.attack.unwrap().probe_lines.len() as u64,
            flush_stride - 1,
            "window clamps below the flusher stride"
        );
    }

    #[test]
    fn scenario_name_round_trip() {
        for s in AttackScenario::ALL {
            assert_eq!(AttackScenario::by_name(s.name()), Some(s));
        }
        assert_eq!(AttackScenario::by_name("nope"), None);
    }
}
