//! Synthetic single-program applications: the SPEC-CPU-2017-class
//! pattern generators behind the multiprogrammed mixes.

use crate::{CoreTrace, ScaleParams, TraceRecord};
use ziv_common::{Addr, SimRng};

/// LLC associativity assumed when constructing same-set conflict
/// patterns (all of the paper's configurations use a 16-way LLC).
pub const LLC_WAYS: u64 = 16;

/// Accesses spent in the private-hot phase of each
/// [`AppClass::PhasedScan`] cycle.
pub const PHASED_HOT_ACCESSES: u32 = 2000;

/// Accesses spent in the streaming-scan phase of each
/// [`AppClass::PhasedScan`] cycle.
pub const PHASED_STREAM_ACCESSES: u32 = 1000;

/// The access-pattern class of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppClass {
    /// Sequential streaming over a footprint (× LLC capacity); no reuse
    /// within any cache. lbm/fotonik3d-class.
    Streaming {
        /// Footprint as a multiple of LLC capacity.
        footprint_x_llc: f64,
    },
    /// The paper's Section I pattern: per-LLC-set circular access over
    /// more blocks than the associativity, making the most recently
    /// used block the one with the furthest reuse. mcf/omnetpp-class.
    CircularSet {
        /// Blocks cycling within each covered set (> 16 to defeat the
        /// associativity).
        blocks_per_set: u32,
        /// Fraction of LLC sets covered.
        sets_covered: f64,
    },
    /// Global circular sweep over slightly more than the LLC capacity:
    /// LRU thrashes, MIN/Hawkeye salvage a resident prefix.
    CircularGlobal {
        /// Footprint as a multiple of LLC capacity.
        footprint_x_llc: f64,
    },
    /// Hot working set sized to the private L2 (× L2 capacity): the
    /// *victim* profile — its performance collapses under inclusion
    /// victims. exchange2/leela-class.
    HotPrivate {
        /// Footprint as a multiple of per-core L2 capacity.
        footprint_x_l2: f64,
    },
    /// Dependent random walk over a shuffled permutation cycle;
    /// latency-bound. mcf-pointer-class.
    PointerChase {
        /// Footprint as a multiple of LLC capacity.
        footprint_x_llc: f64,
    },
    /// Zipf-distributed accesses over a large footprint (database /
    /// server class).
    Zipf {
        /// Footprint as a multiple of LLC capacity.
        footprint_x_llc: f64,
        /// Zipf exponent (higher = more skew).
        exponent: f64,
    },
    /// Three-point stencil sweeps (neighbor reuse). applu-class.
    Stencil {
        /// Footprint as a multiple of LLC capacity.
        footprint_x_llc: f64,
    },
    /// Blocked/tiled kernel: each L2-sized tile is reused heavily
    /// before moving on. gemm-class.
    Tiled {
        /// Tile size as a multiple of L2 capacity.
        tile_x_l2: f64,
        /// Number of tiles in the footprint.
        tiles: u32,
        /// Sequential passes per tile before moving on.
        passes_per_tile: u32,
    },
    /// Alternating phases: a private-hot region, then a streaming scan
    /// (the mixed profile where QBS/SHARP-style promotions misfire).
    PhasedScan {
        /// Hot-region size as a multiple of L2 capacity.
        hot_x_l2: f64,
        /// Scan footprint as a multiple of LLC capacity.
        stream_x_llc: f64,
    },
}

/// A named application: class + intensity parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSpec {
    /// Short name (used in mix names and figure output).
    pub name: &'static str,
    /// Pattern class.
    pub class: AppClass,
    /// Fraction of accesses that are stores.
    pub write_ratio: f64,
    /// Latency-hiding factor (see [`CoreTrace::overlap`]).
    pub overlap: f64,
    /// Mean non-memory instructions between accesses.
    pub gap_mean: f64,
}

/// The synthetic application suite (12 profiles spanning the behavior
/// classes the paper's 36 SPEC pairs cover).
pub const APPS: [AppSpec; 12] = [
    AppSpec {
        name: "stream",
        class: AppClass::Streaming {
            footprint_x_llc: 4.0,
        },
        write_ratio: 0.10,
        overlap: 0.75,
        gap_mean: 3.0,
    },
    AppSpec {
        name: "wstream",
        class: AppClass::Streaming {
            footprint_x_llc: 2.0,
        },
        write_ratio: 0.70,
        overlap: 0.70,
        gap_mean: 3.0,
    },
    AppSpec {
        name: "circset",
        class: AppClass::CircularSet {
            blocks_per_set: 24,
            sets_covered: 0.5,
        },
        write_ratio: 0.05,
        overlap: 0.35,
        gap_mean: 3.0,
    },
    AppSpec {
        name: "circbig",
        class: AppClass::CircularGlobal {
            footprint_x_llc: 1.5,
        },
        write_ratio: 0.05,
        overlap: 0.40,
        gap_mean: 3.0,
    },
    AppSpec {
        name: "hotl2",
        class: AppClass::HotPrivate {
            footprint_x_l2: 0.5,
        },
        write_ratio: 0.30,
        overlap: 0.25,
        gap_mean: 2.0,
    },
    AppSpec {
        name: "hotl2big",
        class: AppClass::HotPrivate {
            footprint_x_l2: 1.8,
        },
        write_ratio: 0.30,
        overlap: 0.25,
        gap_mean: 2.0,
    },
    AppSpec {
        name: "chase",
        class: AppClass::PointerChase {
            footprint_x_llc: 2.0,
        },
        write_ratio: 0.0,
        overlap: 0.10,
        gap_mean: 5.0,
    },
    AppSpec {
        name: "zipfdb",
        class: AppClass::Zipf {
            footprint_x_llc: 4.0,
            exponent: 0.85,
        },
        write_ratio: 0.15,
        overlap: 0.40,
        gap_mean: 4.0,
    },
    AppSpec {
        name: "stencil",
        class: AppClass::Stencil {
            footprint_x_llc: 2.0,
        },
        write_ratio: 0.33,
        overlap: 0.60,
        gap_mean: 2.0,
    },
    AppSpec {
        name: "tiles",
        class: AppClass::Tiled {
            tile_x_l2: 0.6,
            tiles: 16,
            passes_per_tile: 8,
        },
        write_ratio: 0.20,
        overlap: 0.50,
        gap_mean: 2.0,
    },
    AppSpec {
        name: "scanphase",
        class: AppClass::PhasedScan {
            hot_x_l2: 0.5,
            stream_x_llc: 2.0,
        },
        write_ratio: 0.20,
        overlap: 0.45,
        gap_mean: 3.0,
    },
    AppSpec {
        name: "zipfnear",
        class: AppClass::Zipf {
            footprint_x_llc: 0.25,
            exponent: 0.6,
        },
        write_ratio: 0.25,
        overlap: 0.30,
        gap_mean: 2.0,
    },
];

/// Looks up an application by name.
pub fn app_by_name(name: &str) -> Option<AppSpec> {
    APPS.iter().copied().find(|a| a.name == name)
}

impl AppClass {
    /// The class's deterministic phase period in accesses under
    /// `scale`, for classes whose behavior alternates in fixed-length
    /// segments: [`AppClass::PhasedScan`] repeats a hot+stream cycle
    /// every [`PHASED_HOT_ACCESSES`]` + `[`PHASED_STREAM_ACCESSES`]
    /// accesses, and [`AppClass::Tiled`] moves to a new tile every
    /// `tile lines × passes_per_tile` accesses. Classes whose locality
    /// drifts smoothly or randomly return `None` — there is no segment
    /// boundary for a sampler to alias against.
    pub fn phase_period(&self, scale: ScaleParams) -> Option<u64> {
        match *self {
            AppClass::PhasedScan { .. } => {
                Some((PHASED_HOT_ACCESSES + PHASED_STREAM_ACCESSES) as u64)
            }
            AppClass::Tiled {
                tile_x_l2,
                passes_per_tile,
                ..
            } if passes_per_tile > 0 => {
                Some(tile_lines(tile_x_l2, scale.l2_lines.max(16)) * passes_per_tile as u64)
            }
            _ => None,
        }
    }
}

impl AppSpec {
    /// [`AppClass::phase_period`] of this application's class.
    pub fn phase_period(&self, scale: ScaleParams) -> Option<u64> {
        self.class.phase_period(scale)
    }
}

/// Internal per-class generator state.
#[derive(Debug)]
enum GenState {
    Sequential {
        footprint: u64,
        pos: u64,
    },
    CircularSet {
        stride: u64,
        sets: u64,
        blocks: u64,
        set_cursor: u64,
        pointers: Vec<u32>,
    },
    HotRandom {
        footprint: u64,
    },
    Chase {
        perm: Vec<u32>,
        pos: u32,
    },
    Zipf {
        cdf: Vec<f64>,
        total: f64,
    },
    Stencil {
        footprint: u64,
        pos: u64,
        row: u64,
    },
    Tiled {
        tile: u64,
        tiles: u64,
        passes: u32,
        pos: u64,
        tile_idx: u64,
        pass: u32,
    },
    Phased {
        hot: u64,
        stream: u64,
        in_hot: bool,
        count: u32,
        pos: u64,
    },
}

/// Tile footprint of an [`AppClass::Tiled`] kernel in lines — shared
/// with [`AppClass::phase_period`] so the advertised segment length
/// always matches the generator's state.
fn tile_lines(tile_x_l2: f64, l2: u64) -> u64 {
    ((l2 as f64 * tile_x_l2) as u64).max(16)
}

fn build_state(class: AppClass, scale: ScaleParams, rng: &mut SimRng) -> GenState {
    let llc = scale.llc_lines.max(64);
    let l2 = scale.l2_lines.max(16);
    match class {
        AppClass::Streaming { footprint_x_llc } => GenState::Sequential {
            footprint: ((llc as f64 * footprint_x_llc) as u64).max(64),
            pos: 0,
        },
        AppClass::CircularSet {
            blocks_per_set,
            sets_covered,
        } => {
            // Lines spaced `llc_lines / ways` apart map to the same LLC
            // set (bank-interleaved modulo indexing, 16-way LLC).
            let stride = (llc / LLC_WAYS).max(1);
            let sets = ((stride as f64 * sets_covered) as u64).max(1);
            GenState::CircularSet {
                stride,
                sets,
                blocks: blocks_per_set as u64,
                set_cursor: 0,
                pointers: vec![0; sets as usize],
            }
        }
        AppClass::CircularGlobal { footprint_x_llc } => GenState::Sequential {
            footprint: ((llc as f64 * footprint_x_llc) as u64).max(64),
            pos: 0,
        },
        AppClass::HotPrivate { footprint_x_l2 } => GenState::HotRandom {
            footprint: ((l2 as f64 * footprint_x_l2) as u64).max(8),
        },
        AppClass::PointerChase { footprint_x_llc } => {
            let n = ((llc as f64 * footprint_x_llc) as u64).max(64) as u32;
            // Build a single Hamiltonian cycle (a random shuffle used as
            // a successor table would decompose into many short cycles).
            let mut order: Vec<u32> = (0..n).collect();
            rng.shuffle(&mut order);
            let mut perm = vec![0u32; n as usize];
            for i in 0..n as usize {
                perm[order[i] as usize] = order[(i + 1) % n as usize];
            }
            GenState::Chase { perm, pos: 0 }
        }
        AppClass::Zipf {
            footprint_x_llc,
            exponent,
        } => {
            let n = ((llc as f64 * footprint_x_llc) as u64).max(64) as usize;
            let mut cdf = Vec::with_capacity(n);
            let mut total = 0.0;
            for i in 0..n {
                total += 1.0 / ((i + 1) as f64).powf(exponent);
                cdf.push(total);
            }
            GenState::Zipf { cdf, total }
        }
        AppClass::Stencil { footprint_x_llc } => GenState::Stencil {
            footprint: ((llc as f64 * footprint_x_llc) as u64).max(256),
            pos: 0,
            row: (l2 / 2).max(16),
        },
        AppClass::Tiled {
            tile_x_l2,
            tiles,
            passes_per_tile,
        } => GenState::Tiled {
            tile: tile_lines(tile_x_l2, l2),
            tiles: tiles as u64,
            passes: passes_per_tile,
            pos: 0,
            tile_idx: 0,
            pass: 0,
        },
        AppClass::PhasedScan {
            hot_x_l2,
            stream_x_llc,
        } => GenState::Phased {
            hot: ((l2 as f64 * hot_x_l2) as u64).max(8),
            stream: ((llc as f64 * stream_x_llc) as u64).max(64),
            in_hot: true,
            count: 0,
            pos: 0,
        },
    }
}

/// Advances the state machine and returns `(relative_line, pc_index)`.
fn next_line(state: &mut GenState, rng: &mut SimRng) -> (u64, u64) {
    match state {
        GenState::Sequential { footprint, pos } => {
            let l = *pos;
            *pos = (*pos + 1) % *footprint;
            (l, 0)
        }
        GenState::CircularSet {
            stride,
            sets,
            blocks,
            set_cursor,
            pointers,
        } => {
            let s = *set_cursor;
            *set_cursor = (*set_cursor + 1) % *sets;
            let p = &mut pointers[s as usize];
            let l = s + (*p as u64) * *stride;
            *p = ((*p as u64 + 1) % *blocks) as u32;
            (l, 1)
        }
        GenState::HotRandom { footprint } => (rng.below(*footprint), 2),
        GenState::Chase { perm, pos } => {
            let l = *pos as u64;
            *pos = perm[*pos as usize];
            (l, 3)
        }
        GenState::Zipf { cdf, total } => {
            let u = rng.next_f64() * *total;
            let idx = cdf.partition_point(|&c| c < u);
            (idx.min(cdf.len() - 1) as u64, 4)
        }
        GenState::Stencil {
            footprint,
            pos,
            row,
        } => {
            // Emit center, then +row, then -row around a sweeping cursor.
            let phase = *pos % 3;
            let center = (*pos / 3) % *footprint;
            let l = match phase {
                0 => center,
                1 => (center + *row) % *footprint,
                _ => (center + *footprint - *row) % *footprint,
            };
            *pos += 1;
            (l, 5 + phase)
        }
        GenState::Tiled {
            tile,
            tiles,
            passes,
            pos,
            tile_idx,
            pass,
        } => {
            let base = *tile_idx * *tile;
            let l = base + *pos;
            *pos += 1;
            if *pos == *tile {
                *pos = 0;
                *pass += 1;
                if *pass == *passes {
                    *pass = 0;
                    *tile_idx = (*tile_idx + 1) % *tiles;
                }
            }
            (l, 8)
        }
        GenState::Phased {
            hot,
            stream,
            in_hot,
            count,
            pos,
        } => {
            *count += 1;

            if *in_hot {
                if *count >= PHASED_HOT_ACCESSES {
                    *in_hot = false;
                    *count = 0;
                }
                (rng.below(*hot), 9)
            } else {
                if *count >= PHASED_STREAM_ACCESSES {
                    *in_hot = true;
                    *count = 0;
                }
                let l = *hot + *pos;
                *pos = (*pos + 1) % *stream;
                (l, 10)
            }
        }
    }
}

/// Generates a core trace of `len` accesses for `spec`, with all lines
/// offset by `base_line` (multiprogrammed address-space isolation).
pub fn generate(
    spec: AppSpec,
    len: usize,
    base_line: u64,
    seed: u64,
    scale: ScaleParams,
) -> CoreTrace {
    let mut rng = SimRng::seed_from_u64(seed ^ x_app_seed(spec.name));
    let mut state = build_state(spec.class, scale, &mut rng);
    let gap_p = 1.0 / (1.0 + spec.gap_mean);
    let mut records = Vec::with_capacity(len);
    for _ in 0..len {
        let (rel, pc_idx) = next_line(&mut state, &mut rng);
        let line = base_line + rel;
        records.push(TraceRecord {
            addr: Addr::new(line << 6),
            pc: 0x10_0000 + 0x1000 * hash_name(spec.name) + pc_idx * 4,
            is_write: rng.chance(spec.write_ratio),
            gap: rng.geometric(gap_p, 255) as u8,
        });
    }
    CoreTrace {
        records,
        overlap: spec.overlap,
        app_name: spec.name,
    }
}

/// Stable per-app hash for PC-space separation.
fn hash_name(name: &str) -> u64 {
    name.bytes().fold(1469598103934665603u64, |h, b| {
        (h ^ b as u64).wrapping_mul(1099511628211)
    }) % 4096
}

/// Stable per-app seed salt.
fn x_app_seed(name: &str) -> u64 {
    hash_name(name).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ScaleParams {
        ScaleParams {
            llc_lines: 16 * 1024,
            l2_lines: 512,
        }
    }

    #[test]
    fn all_apps_generate() {
        for app in APPS {
            let t = generate(app, 2_000, 0, 1, scale());
            assert_eq!(t.records.len(), 2_000, "{}", app.name);
            assert_eq!(t.app_name, app.name);
        }
    }

    #[test]
    fn phase_period_matches_the_generator_toggle_points() {
        let spec = app_by_name("scanphase").unwrap();
        let period = spec.phase_period(scale()).unwrap();
        assert_eq!(
            period,
            (PHASED_HOT_ACCESSES + PHASED_STREAM_ACCESSES) as u64
        );
        // The hot and stream phases emit distinct synthesized PCs
        // (pc_idx 9 vs 10), so the trace itself reveals which phase
        // each access came from — pin the advertised period to the
        // generator's actual alternation over two-plus cycles.
        let t = generate(spec, 2 * period as usize + 500, 0, 1, scale());
        let base_pc = 0x10_0000 + 0x1000 * hash_name(spec.name);
        for (i, r) in t.records.iter().enumerate() {
            let in_hot = (i as u64 % period) < PHASED_HOT_ACCESSES as u64;
            let expect = base_pc + if in_hot { 9 * 4 } else { 10 * 4 };
            assert_eq!(r.pc, expect, "access {i} in the wrong phase");
        }
    }

    #[test]
    fn phase_periods_cover_exactly_the_segmented_classes() {
        // Tiled: one tile visit = tile lines × passes per tile, derived
        // through the same helper the generator state uses.
        let tiles = app_by_name("tiles").unwrap();
        let expect = ((scale().l2_lines as f64 * 0.6) as u64).max(16) * 8;
        assert_eq!(tiles.phase_period(scale()), Some(expect));
        // Classes without fixed-length segments decline.
        for name in ["stream", "hotl2", "chase", "zipfdb", "stencil", "circset"] {
            assert_eq!(
                app_by_name(name).unwrap().phase_period(scale()),
                None,
                "{name}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(APPS[2], 1_000, 0, 7, scale());
        let b = generate(APPS[2], 1_000, 0, 7, scale());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn different_seeds_differ_for_random_apps() {
        let a = generate(app_by_name("hotl2").unwrap(), 1_000, 0, 1, scale());
        let b = generate(app_by_name("hotl2").unwrap(), 1_000, 0, 2, scale());
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn base_line_offsets_address_space() {
        let base = 1u64 << 30;
        let t = generate(APPS[0], 500, base, 1, scale());
        assert!(t.records.iter().all(|r| r.addr.line().raw() >= base));
    }

    #[test]
    fn write_ratio_is_respected() {
        let app = app_by_name("wstream").unwrap();
        let t = generate(app, 20_000, 0, 3, scale());
        let writes = t.records.iter().filter(|r| r.is_write).count();
        let ratio = writes as f64 / t.records.len() as f64;
        assert!((ratio - 0.70).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn circset_maps_to_few_llc_sets() {
        // All accesses of the circular-set pattern must land in the
        // covered (bank, set) pairs of a 16-way LLC.
        let app = app_by_name("circset").unwrap();
        let t = generate(app, 10_000, 0, 5, scale());
        let llc = ziv_common::config::LlcConfig::from_total_capacity(16 * 1024 * 64, 16, 8);
        let mut pairs = std::collections::HashSet::new();
        for r in &t.records {
            let line = r.addr.line();
            pairs.insert((llc.bank_of(line), llc.set_of(line)));
        }
        // Half the sets covered: 512 of 1024 (bank, set) pairs.
        assert!(pairs.len() <= 512, "covered {} set-pairs", pairs.len());
        // And the per-set circular depth exceeds the associativity:
        let mut per_set_lines: std::collections::HashMap<_, std::collections::HashSet<u64>> =
            std::collections::HashMap::new();
        for r in &t.records {
            let line = r.addr.line();
            per_set_lines
                .entry((llc.bank_of(line), llc.set_of(line)))
                .or_default()
                .insert(line.raw());
        }
        let max_depth = per_set_lines.values().map(|s| s.len()).max().unwrap();
        assert!(
            max_depth > 16,
            "max per-set depth {max_depth} must exceed associativity"
        );
    }

    #[test]
    fn hot_private_stays_within_l2_scale() {
        let app = app_by_name("hotl2").unwrap();
        let t = generate(app, 5_000, 0, 9, scale());
        let max = t.records.iter().map(|r| r.addr.line().raw()).max().unwrap();
        assert!(
            max < 256,
            "footprint must be half the 512-line L2, got {max}"
        );
    }

    #[test]
    fn zipf_is_skewed() {
        let app = app_by_name("zipfdb").unwrap();
        let t = generate(app, 50_000, 0, 11, scale());
        let mut counts = std::collections::HashMap::new();
        for r in &t.records {
            *counts.entry(r.addr.line().raw()).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 > 0.05 * t.records.len() as f64,
            "zipf head too flat: {top10}"
        );
    }

    #[test]
    fn chase_visits_whole_cycle() {
        let app = app_by_name("chase").unwrap();
        let small = ScaleParams {
            llc_lines: 64,
            l2_lines: 16,
        };
        let t = generate(app, 128, 0, 13, small);
        let distinct: std::collections::HashSet<u64> =
            t.records.iter().map(|r| r.addr.line().raw()).collect();
        assert_eq!(
            distinct.len(),
            128,
            "a permutation cycle visits every line once per lap"
        );
    }

    #[test]
    fn gap_mean_is_plausible() {
        let t = generate(APPS[0], 50_000, 0, 15, scale());
        let mean = t.records.iter().map(|r| r.gap as f64).sum::<f64>() / t.records.len() as f64;
        assert!((mean - 3.0).abs() < 0.3, "gap mean {mean}");
    }
}
