//! Trace import/export: a simple line-oriented text format so external
//! traces (e.g. converted Pin or ChampSim traces) can drive the
//! simulator, and generated workloads can be inspected or archived.
//!
//! Format (one access per line, `#` comments allowed):
//!
//! ```text
//! # ziv-trace v1
//! # workload: my-workload
//! # core 0 overlap 0.45 app myapp
//! <core> <hex byte address> <hex pc> <r|w> <gap>
//! 0 7f001040 400a12 r 3
//! 1 10808080 400b00 w 0
//! ```
//!
//! Core metadata lines (`# core N overlap F app NAME`) are optional;
//! unlisted cores default to overlap 0.4 and app name "imported".

use crate::{CoreTrace, TraceRecord, Workload};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use ziv_common::{Addr, SimError};

/// Default latency-hiding factor for imported traces without metadata.
pub const DEFAULT_OVERLAP: f64 = 0.4;

/// Error type for trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

fn err(line: usize, message: impl Into<String>) -> ParseTraceError {
    ParseTraceError {
        line,
        message: message.into(),
    }
}

/// Writes a workload in the ziv-trace text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(workload: &Workload, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# ziv-trace v1")?;
    writeln!(out, "# workload: {}", workload.name)?;
    for (c, t) in workload.traces.iter().enumerate() {
        writeln!(out, "# core {c} overlap {} app {}", t.overlap, t.app_name)?;
    }
    // Interleave round-robin so the file reflects the nominal global
    // order (and streams well for very long traces).
    let longest = workload
        .traces
        .iter()
        .map(|t| t.records.len())
        .max()
        .unwrap_or(0);
    for i in 0..longest {
        for (c, t) in workload.traces.iter().enumerate() {
            if let Some(r) = t.records.get(i) {
                writeln!(
                    out,
                    "{c} {:x} {:x} {} {}",
                    r.addr.raw(),
                    r.pc,
                    if r.is_write { 'w' } else { 'r' },
                    r.gap
                )?;
            }
        }
    }
    Ok(())
}

/// Reads a workload from the ziv-trace text format. `app_name` for
/// cores without metadata is `"imported"` (leaked once per distinct
/// name; trace import is a setup-time operation).
///
/// # Errors
///
/// Returns a [`ParseTraceError`] describing the first malformed line.
pub fn read_trace<R: Read>(input: R) -> Result<Workload, ParseTraceError> {
    let reader = BufReader::new(input);
    let mut name = "imported".to_string();
    let mut overlaps: Vec<(usize, f64, String)> = Vec::new();
    let mut per_core: Vec<Vec<TraceRecord>> = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| err(lineno, format!("I/O: {e}")))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim();
            if let Some(rest) = comment.strip_prefix("workload:") {
                name = rest.trim().to_string();
            } else if let Some(rest) = comment.strip_prefix("core ") {
                // "# core N overlap F app NAME"
                let mut parts = rest.split_whitespace();
                let core: usize = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing core index"))?
                    .parse()
                    .map_err(|e| err(lineno, format!("core index: {e}")))?;
                let mut overlap = DEFAULT_OVERLAP;
                let mut app = "imported".to_string();
                while let Some(key) = parts.next() {
                    let value = parts
                        .next()
                        .ok_or_else(|| err(lineno, format!("{key} needs a value")))?;
                    match key {
                        "overlap" => {
                            overlap = value
                                .parse()
                                .map_err(|e| err(lineno, format!("overlap: {e}")))?
                        }
                        "app" => app = value.to_string(),
                        _ => return Err(err(lineno, format!("unknown core attribute '{key}'"))),
                    }
                }
                overlaps.push((core, overlap, app));
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let core: usize = parts
            .next()
            .ok_or_else(|| err(lineno, "missing core"))?
            .parse()
            .map_err(|e| err(lineno, format!("core: {e}")))?;
        let addr = u64::from_str_radix(
            parts.next().ok_or_else(|| err(lineno, "missing address"))?,
            16,
        )
        .map_err(|e| err(lineno, format!("address: {e}")))?;
        let pc = u64::from_str_radix(parts.next().ok_or_else(|| err(lineno, "missing pc"))?, 16)
            .map_err(|e| err(lineno, format!("pc: {e}")))?;
        let rw = parts.next().ok_or_else(|| err(lineno, "missing r/w"))?;
        let is_write = match rw {
            "r" | "R" => false,
            "w" | "W" => true,
            other => return Err(err(lineno, format!("expected r or w, got '{other}'"))),
        };
        let gap: u8 = parts
            .next()
            .ok_or_else(|| err(lineno, "missing gap"))?
            .parse()
            .map_err(|e| err(lineno, format!("gap: {e}")))?;
        if parts.next().is_some() {
            return Err(err(lineno, "trailing fields"));
        }
        if per_core.len() <= core {
            per_core.resize_with(core + 1, Vec::new);
        }
        per_core[core].push(TraceRecord {
            addr: Addr::new(addr),
            pc,
            is_write,
            gap,
        });
    }

    if per_core.is_empty() {
        return Err(err(0, "trace contains no accesses"));
    }
    let traces = per_core
        .into_iter()
        .enumerate()
        .map(|(c, records)| {
            let (overlap, app) = overlaps
                .iter()
                .find(|(core, _, _)| *core == c)
                .map(|(_, o, a)| (*o, a.clone()))
                .unwrap_or((DEFAULT_OVERLAP, "imported".to_string()));
            CoreTrace {
                records,
                overlap,
                app_name: Box::leak(app.into_boxed_str()),
            }
        })
        .collect();
    Ok(Workload {
        name,
        traces,
        attack: None,
    })
}

/// Reads a workload from a trace file at `path`, attaching the file
/// path to both I/O and parse failures.
///
/// # Errors
///
/// - [`SimError::Io`] when the file cannot be opened.
/// - [`SimError::Parse`] carrying `path` and the 1-based line number of
///   the first malformed line.
pub fn read_trace_file(path: &Path) -> Result<Workload, SimError> {
    let file = std::fs::File::open(path).map_err(|e| SimError::io("open trace file", path, e))?;
    read_trace(file).map_err(|e| SimError::parse(Some(path), e.line, e.message))
}

/// Writes a workload to a trace file at `path`, attaching the file path
/// to any failure.
///
/// # Errors
///
/// Returns [`SimError::Io`] naming `path` and the failing operation.
pub fn write_trace_file(path: &Path, workload: &Workload) -> Result<(), SimError> {
    let file =
        std::fs::File::create(path).map_err(|e| SimError::io("create trace file", path, e))?;
    let mut w = std::io::BufWriter::new(file);
    write_trace(workload, &mut w).map_err(|e| SimError::io("write trace file", path, e))?;
    w.flush()
        .map_err(|e| SimError::io("flush trace file", path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apps, mixes, ScaleParams};

    fn sample() -> Workload {
        let scale = ScaleParams {
            llc_lines: 1024,
            l2_lines: 64,
        };
        mixes::homogeneous(apps::APPS[4], 2, 50, 9, scale)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let wl = sample();
        let mut buf = Vec::new();
        write_trace(&wl, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.name, wl.name);
        assert_eq!(back.cores(), wl.cores());
        for (a, b) in wl.traces.iter().zip(&back.traces) {
            assert_eq!(a.records, b.records);
            assert!((a.overlap - b.overlap).abs() < 1e-9);
            assert_eq!(a.app_name, b.app_name);
        }
    }

    #[test]
    fn parses_hand_written_trace() {
        let text = "\
# ziv-trace v1
# workload: demo
# core 0 overlap 0.5 app mine

0 1040 400 r 3
0 2080 404 w 0
1 1040 400 r 1
";
        let wl = read_trace(text.as_bytes()).unwrap();
        assert_eq!(wl.name, "demo");
        assert_eq!(wl.cores(), 2);
        assert_eq!(wl.traces[0].records.len(), 2);
        assert!(wl.traces[0].records[1].is_write);
        assert_eq!(wl.traces[0].records[0].addr.raw(), 0x1040);
        assert!((wl.traces[0].overlap - 0.5).abs() < 1e-9);
        assert_eq!(wl.traces[0].app_name, "mine");
        assert!((wl.traces[1].overlap - DEFAULT_OVERLAP).abs() < 1e-9);
    }

    #[test]
    fn reports_malformed_lines_with_position() {
        let bad = "0 zzzz 400 r 3\n";
        let e = read_trace(bad.as_bytes()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("address"));

        let bad = "# ziv-trace v1\n0 1040 400 x 3\n";
        let e = read_trace(bad.as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected r or w"));

        let bad = "0 1040 400 r 3 extra\n";
        assert!(read_trace(bad.as_bytes())
            .unwrap_err()
            .message
            .contains("trailing"));
    }

    #[test]
    fn empty_trace_is_an_error() {
        let e = read_trace("# nothing here\n".as_bytes()).unwrap_err();
        assert!(e.message.contains("no accesses"));
    }

    #[test]
    fn display_formats_error() {
        let e = ParseTraceError {
            line: 7,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "trace parse error at line 7: boom");
    }
}
