//! Workload *recipes*: compact, semantically-hashable descriptions of
//! how to (re)generate a workload.
//!
//! The campaign harness (`ziv-harness`) addresses cached results by a
//! content digest. Hashing generated traces would cost a full
//! generation pass per lookup and would tie the digest to generator
//! internals; a recipe instead digests the *inputs* of generation
//! (generator kind, application, core count, length, seed, scale),
//! which fully determine the trace because every generator is seeded
//! and deterministic. Regenerating a workload from its recipe is
//! therefore exact, and two recipes with equal digests always build
//! byte-identical traces.

use crate::attack::AttackRecipe;
use crate::{apps, attack, mixes, multithreaded, ScaleParams, Workload};
use ziv_common::Fnv1a;

/// The multithreaded applications (PARSEC / SPEC OMP / TPC-E stand-ins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtApp {
    /// PARSEC canneal (pointer-chasing over a shared netlist).
    Canneal,
    /// PARSEC facesim (partitioned grids with halo sharing).
    Facesim,
    /// PARSEC vips (streaming image pipeline).
    Vips,
    /// SPEC OMP 316.applu (blocked dense solver).
    Applu,
    /// The 128-core TPC-E server trace stand-in.
    Tpce,
}

impl MtApp {
    /// All multithreaded applications.
    pub const ALL: [MtApp; 5] = [
        MtApp::Canneal,
        MtApp::Facesim,
        MtApp::Vips,
        MtApp::Applu,
        MtApp::Tpce,
    ];

    /// The CLI / recipe name.
    pub fn name(self) -> &'static str {
        match self {
            MtApp::Canneal => "canneal",
            MtApp::Facesim => "facesim",
            MtApp::Vips => "vips",
            MtApp::Applu => "applu",
            MtApp::Tpce => "tpce",
        }
    }

    /// Looks an application up by its CLI name.
    pub fn by_name(name: &str) -> Option<MtApp> {
        MtApp::ALL.into_iter().find(|a| a.name() == name)
    }
}

/// Which generator a recipe drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecipeKind {
    /// [`mixes::homogeneous`] of the named application.
    Homogeneous {
        /// Application name (must resolve via [`apps::app_by_name`]).
        app: &'static str,
    },
    /// [`mixes::heterogeneous`] with the given mix index.
    Heterogeneous {
        /// Index into the balanced mix rotation.
        mix_index: usize,
    },
    /// One of the [`multithreaded`] applications.
    Multithreaded {
        /// The application.
        app: MtApp,
    },
    /// An adversarial attacker/victim co-schedule ([`attack`]).
    Attack {
        /// Scenario and target-set count.
        attack: AttackRecipe,
    },
}

/// A complete, hashable workload description. `build()` regenerates
/// the workload deterministically; `digest_into()` feeds the semantic
/// fields (and nothing else) into a cell digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recipe {
    /// Generator selection.
    pub kind: RecipeKind,
    /// Number of cores the workload drives.
    pub cores: usize,
    /// Accesses generated per core.
    pub accesses_per_core: usize,
    /// Generator seed.
    pub seed: u64,
    /// Capacity parameters the footprints scale against.
    pub scale: ScaleParams,
}

impl Recipe {
    /// A homogeneous-mix recipe for `app`.
    pub fn homogeneous(
        app: apps::AppSpec,
        cores: usize,
        accesses_per_core: usize,
        seed: u64,
        scale: ScaleParams,
    ) -> Self {
        Recipe {
            kind: RecipeKind::Homogeneous { app: app.name },
            cores,
            accesses_per_core,
            seed,
            scale,
        }
    }

    /// A heterogeneous-mix recipe.
    pub fn heterogeneous(
        mix_index: usize,
        cores: usize,
        accesses_per_core: usize,
        seed: u64,
        scale: ScaleParams,
    ) -> Self {
        Recipe {
            kind: RecipeKind::Heterogeneous { mix_index },
            cores,
            accesses_per_core,
            seed,
            scale,
        }
    }

    /// A multithreaded-application recipe.
    pub fn multithreaded(
        app: MtApp,
        cores: usize,
        accesses_per_core: usize,
        seed: u64,
        scale: ScaleParams,
    ) -> Self {
        Recipe {
            kind: RecipeKind::Multithreaded { app },
            cores,
            accesses_per_core,
            seed,
            scale,
        }
    }

    /// An attack co-schedule recipe.
    pub fn attack(
        attack: AttackRecipe,
        cores: usize,
        accesses_per_core: usize,
        seed: u64,
        scale: ScaleParams,
    ) -> Self {
        Recipe {
            kind: RecipeKind::Attack { attack },
            cores,
            accesses_per_core,
            seed,
            scale,
        }
    }

    /// The standard suite of recipes mirroring [`mixes::default_suite`]:
    /// every homogeneous mix plus `hetero` heterogeneous mixes.
    pub fn default_suite(
        hetero: usize,
        cores: usize,
        accesses_per_core: usize,
        seed: u64,
        scale: ScaleParams,
    ) -> Vec<Recipe> {
        let mut suite: Vec<Recipe> = apps::APPS
            .iter()
            .map(|&a| Recipe::homogeneous(a, cores, accesses_per_core, seed, scale))
            .collect();
        suite.extend(
            (0..hetero).map(|i| Recipe::heterogeneous(i, cores, accesses_per_core, seed, scale)),
        );
        suite
    }

    /// Regenerates the workload this recipe describes.
    ///
    /// # Panics
    ///
    /// Panics if a homogeneous recipe names an unknown application
    /// (impossible for recipes built through the typed constructors).
    pub fn build(&self) -> Workload {
        let (cores, n, seed, scale) = (self.cores, self.accesses_per_core, self.seed, self.scale);
        match self.kind {
            RecipeKind::Homogeneous { app } => {
                let spec = apps::app_by_name(app)
                    .unwrap_or_else(|| panic!("unknown application '{app}' in recipe"));
                mixes::homogeneous(spec, cores, n, seed, scale)
            }
            RecipeKind::Heterogeneous { mix_index } => {
                mixes::heterogeneous(mix_index, cores, n, seed, scale)
            }
            RecipeKind::Multithreaded { app } => match app {
                MtApp::Canneal => multithreaded::canneal(cores, n, seed, scale),
                MtApp::Facesim => multithreaded::facesim(cores, n, seed, scale),
                MtApp::Vips => multithreaded::vips(cores, n, seed, scale),
                MtApp::Applu => multithreaded::applu(cores, n, seed, scale),
                MtApp::Tpce => multithreaded::tpce(cores, n, seed, scale),
            },
            RecipeKind::Attack { attack } => attack::generate(attack, cores, n, seed, scale),
        }
    }

    /// The name the built workload will carry (without generating it).
    pub fn workload_name(&self) -> String {
        match self.kind {
            RecipeKind::Homogeneous { app } => format!("homo-{app}"),
            RecipeKind::Heterogeneous { mix_index } => format!("hetero-{mix_index:02}"),
            RecipeKind::Multithreaded { app } => match app {
                MtApp::Applu => "316.applu".to_string(),
                MtApp::Tpce => "TPC-E".to_string(),
                other => other.name().to_string(),
            },
            RecipeKind::Attack { attack } => format!("attack-{}", attack.scenario.name()),
        }
    }

    /// Feeds the recipe's semantic fields into a cell digest. Stable
    /// across processes and thread counts: only explicit field values
    /// are written, never addresses or generated data.
    pub fn digest_into(&self, h: &mut Fnv1a) {
        match self.kind {
            RecipeKind::Homogeneous { app } => {
                h.write_u64(0);
                h.write_str(app);
            }
            RecipeKind::Heterogeneous { mix_index } => {
                h.write_u64(1);
                h.write_usize(mix_index);
            }
            RecipeKind::Multithreaded { app } => {
                h.write_u64(2);
                h.write_str(app.name());
            }
            RecipeKind::Attack { attack } => {
                h.write_u64(3);
                h.write_u64(attack.scenario.discriminant());
                h.write_u64(u64::from(attack.target_sets));
            }
        }
        h.write_usize(self.cores);
        h.write_usize(self.accesses_per_core);
        h.write_u64(self.seed);
        h.write_u64(self.scale.llc_lines);
        h.write_u64(self.scale.l2_lines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ScaleParams {
        ScaleParams {
            llc_lines: 16 * 1024,
            l2_lines: 512,
        }
    }

    #[test]
    fn build_matches_direct_generation() {
        let r = Recipe::homogeneous(apps::APPS[3], 2, 300, 7, scale());
        let direct = mixes::homogeneous(apps::APPS[3], 2, 300, 7, scale());
        let built = r.build();
        assert_eq!(built.name, direct.name);
        assert_eq!(built.name, r.workload_name());
        for (a, b) in built.traces.iter().zip(&direct.traces) {
            assert_eq!(a.records, b.records);
        }
    }

    #[test]
    fn workload_names_match_generators() {
        for (kind, n) in [
            (Recipe::heterogeneous(3, 2, 10, 1, scale()), "hetero-03"),
            (
                Recipe::multithreaded(MtApp::Applu, 2, 10, 1, scale()),
                "316.applu",
            ),
            (
                Recipe::multithreaded(MtApp::Tpce, 2, 10, 1, scale()),
                "TPC-E",
            ),
            (
                Recipe::multithreaded(MtApp::Canneal, 2, 10, 1, scale()),
                "canneal",
            ),
        ] {
            assert_eq!(kind.build().name, n);
            assert_eq!(kind.workload_name(), n);
        }
    }

    #[test]
    fn digest_separates_semantic_fields() {
        let base = Recipe::homogeneous(apps::APPS[0], 4, 100, 1, scale());
        let digest = |r: &Recipe| {
            let mut h = Fnv1a::new();
            r.digest_into(&mut h);
            h.finish()
        };
        let d0 = digest(&base);
        assert_eq!(d0, digest(&{ base }));
        for changed in [
            Recipe { cores: 8, ..base },
            Recipe {
                accesses_per_core: 101,
                ..base
            },
            Recipe { seed: 2, ..base },
            Recipe {
                scale: ScaleParams {
                    llc_lines: 8 * 1024,
                    l2_lines: 512,
                },
                ..base
            },
            Recipe::homogeneous(apps::APPS[1], 4, 100, 1, scale()),
            Recipe::heterogeneous(0, 4, 100, 1, scale()),
        ] {
            assert_ne!(d0, digest(&changed), "{changed:?}");
        }
    }

    #[test]
    fn attack_recipe_builds_and_digests_distinctly() {
        use crate::attack::AttackRecipe;
        let digest = |r: &Recipe| {
            let mut h = Fnv1a::new();
            r.digest_into(&mut h);
            h.finish()
        };
        let pp = Recipe::attack(AttackRecipe::prime_probe(8), 4, 200, 7, scale());
        let wl = pp.build();
        assert_eq!(wl.name, pp.workload_name());
        assert_eq!(wl.name, "attack-primeprobe");
        assert!(wl.attack.is_some(), "attack plan rides the workload");
        let hammer = Recipe::attack(AttackRecipe::hammer(8), 4, 200, 7, scale());
        assert_ne!(digest(&pp), digest(&hammer), "scenario is digested");
        let wider = Recipe::attack(AttackRecipe::prime_probe(16), 4, 200, 7, scale());
        assert_ne!(digest(&pp), digest(&wider), "target count is digested");
        // Same inputs → identical traces (determinism through the recipe).
        let a = pp.build();
        let b = pp.build();
        for (x, y) in a.traces.iter().zip(&b.traces) {
            assert_eq!(x.records, y.records);
        }
    }

    #[test]
    fn mt_app_name_round_trip() {
        for a in MtApp::ALL {
            assert_eq!(MtApp::by_name(a.name()), Some(a));
        }
        assert_eq!(MtApp::by_name("nope"), None);
    }

    #[test]
    fn default_suite_mirrors_mixes() {
        let rs = Recipe::default_suite(3, 2, 50, 9, scale());
        let wls = mixes::default_suite(3, 2, 50, 9, scale());
        assert_eq!(rs.len(), wls.len());
        for (r, w) in rs.iter().zip(&wls) {
            assert_eq!(r.workload_name(), w.name);
        }
    }
}
