//! # ziv-directory
//!
//! The sparse coherence directory of the paper's baseline CMP
//! (Section III-A): a tagged set-associative structure, decoupled from
//! the LLC, with one slice per LLC bank. Each entry tracks one privately
//! cached block — its sharer set, its dirty owner, and (in the ZIV
//! design) the `Relocated` state with the `<bank id, set id, way id>`
//! tuple pointing at a relocated LLC block (Section III-C).
//!
//! The directory is kept **up-to-date**: private caches send dataless
//! eviction notices (or writebacks) whenever a block leaves a core's
//! private hierarchy, so a directory lookup answers the question every
//! related proposal needs — *is this LLC block resident in any private
//! cache?* — exactly (the paper notes this also simplifies QBS and
//! SHARP).
//!
//! Two modes are supported:
//!
//! - [`DirectoryMode::Mesi`]: the finite structure evicts entries (1-bit
//!   NRU), and the evicted entry's sharers must be back-invalidated by
//!   the caller — the Fig 15 performance-degradation mechanism.
//! - [`DirectoryMode::ZeroDev`]: models the ZeroDEV protocol
//!   (Chaudhuri, HPCA 2021) integration of Section III-F — evicted
//!   entries continue to be tracked (functionally, in a spill map), so
//!   no directory-eviction back-invalidations are ever generated.
//!
//! # Examples
//!
//! ```
//! use ziv_directory::{SparseDirectory, DirectoryMode};
//! use ziv_common::{config::SystemConfig, CoreId, LineAddr};
//!
//! let cfg = SystemConfig::scaled();
//! let mut dir = SparseDirectory::new(&cfg, DirectoryMode::Mesi);
//! let line = LineAddr::new(0x1234);
//! let evicted = dir.allocate(line, CoreId::new(2));
//! assert!(evicted.is_none());
//! assert!(dir.is_privately_cached(line));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod entry;
mod slice;
mod sparse;

pub use entry::{DirEntryState, LlcLocation, SharerSet};
pub use slice::DirectorySlice;
pub use sparse::{DirectoryMode, DirectoryStats, EvictedEntry, RemovalOutcome, SparseDirectory};
