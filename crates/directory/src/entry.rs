//! Directory entry state: sharer sets, dirty ownership, and the ZIV
//! `Relocated` pointer.

use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::{BankId, CoreId};

/// A set of sharing cores, stored as a 128-bit vector (the paper's
/// largest evaluated machine is the 128-core TPC-E configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct SharerSet(u128);

impl SharerSet {
    /// The empty sharer set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// A set containing exactly one core.
    pub fn single(core: CoreId) -> Self {
        SharerSet(1u128 << core.index())
    }

    /// Whether `core` is in the set.
    #[inline]
    pub fn contains(&self, core: CoreId) -> bool {
        self.0 >> core.index() & 1 == 1
    }

    /// Adds a core; returns whether it was newly added.
    #[inline]
    pub fn insert(&mut self, core: CoreId) -> bool {
        let bit = 1u128 << core.index();
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Removes a core; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, core: CoreId) -> bool {
        let bit = 1u128 << core.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of sharers.
    #[inline]
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the cores in the set, lowest index first.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..128).filter(|&i| self.0 >> i & 1 == 1).map(CoreId::new)
    }

    /// Whether `core` is the *only* sharer.
    pub fn is_sole_sharer(&self, core: CoreId) -> bool {
        self.0 == 1u128 << core.index()
    }
}

/// The `<bank id, set id, way id>` tuple recording where a relocated
/// block currently lives in the LLC (Section III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LlcLocation {
    /// Bank holding the relocated block.
    pub bank: BankId,
    /// Set within the bank.
    pub set: SetIdx,
    /// Way within the set.
    pub way: WayIdx,
}

/// State of one sparse-directory entry.
///
/// The paper's Section III-C4 storage analysis: a baseline entry holds a
/// sharer bitvector plus 2–3 protocol state bits; the ZIV design widens
/// it with a `Relocated` bit and an 18-bit LLC location (28/29 bits total
/// for the 8-core machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirEntryState {
    /// Cores holding a copy of the block.
    pub sharers: SharerSet,
    /// The core holding the block modified (M state), if any. Invariant:
    /// a dirty owner is always a member of `sharers` and is unique.
    pub dirty_owner: Option<CoreId>,
    /// ZIV `Relocated` state: where the (relocated) LLC copy lives.
    pub relocated: Option<LlcLocation>,
    /// Busy while the tracked block waits in the relocation FIFO; private
    /// cache miss requests to a busy entry are negatively acknowledged
    /// (Section III-D1).
    pub busy: bool,
}

impl DirEntryState {
    /// A fresh entry for a block just filled into `core`'s private
    /// caches.
    pub fn for_fill(core: CoreId) -> Self {
        DirEntryState {
            sharers: SharerSet::single(core),
            ..Default::default()
        }
    }

    /// Marks `core` as holding the block modified.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `core` is not a sharer.
    pub fn set_dirty_owner(&mut self, core: CoreId) {
        debug_assert!(
            self.sharers.contains(core),
            "dirty owner must share the block"
        );
        self.dirty_owner = Some(core);
    }

    /// Removes `core` from the entry, clearing dirty ownership if `core`
    /// owned the block. Returns whether the entry is now empty (and
    /// should be freed).
    pub fn remove_core(&mut self, core: CoreId) -> bool {
        self.sharers.remove(core);
        if self.dirty_owner == Some(core) {
            self.dirty_owner = None;
        }
        self.sharers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn sharer_set_insert_remove() {
        let mut s = SharerSet::EMPTY;
        assert!(s.insert(c(3)));
        assert!(!s.insert(c(3)), "duplicate insert reports false");
        assert!(s.contains(c(3)));
        assert_eq!(s.count(), 1);
        assert!(s.remove(c(3)));
        assert!(!s.remove(c(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn sharer_set_supports_128_cores() {
        let mut s = SharerSet::EMPTY;
        s.insert(c(127));
        assert!(s.contains(c(127)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![c(127)]);
    }

    #[test]
    fn sole_sharer_detection() {
        let mut s = SharerSet::single(c(5));
        assert!(s.is_sole_sharer(c(5)));
        assert!(!s.is_sole_sharer(c(4)));
        s.insert(c(6));
        assert!(!s.is_sole_sharer(c(5)));
    }

    #[test]
    fn iter_is_sorted() {
        let mut s = SharerSet::EMPTY;
        for i in [9usize, 2, 64] {
            s.insert(c(i));
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![c(2), c(9), c(64)]);
    }

    #[test]
    fn entry_for_fill_has_single_sharer() {
        let e = DirEntryState::for_fill(c(2));
        assert!(e.sharers.is_sole_sharer(c(2)));
        assert_eq!(e.dirty_owner, None);
        assert_eq!(e.relocated, None);
        assert!(!e.busy);
    }

    #[test]
    fn remove_core_clears_ownership() {
        let mut e = DirEntryState::for_fill(c(1));
        e.set_dirty_owner(c(1));
        assert!(e.remove_core(c(1)), "entry becomes empty");
        assert_eq!(e.dirty_owner, None);
    }

    #[test]
    fn remove_core_keeps_other_sharers() {
        let mut e = DirEntryState::for_fill(c(1));
        e.sharers.insert(c(2));
        assert!(!e.remove_core(c(1)));
        assert!(e.sharers.contains(c(2)));
    }
}
