//! The full sparse directory: one slice per LLC bank, plus the ZeroDEV
//! spill mode and the update protocol the cache hierarchy drives.

use crate::entry::{DirEntryState, LlcLocation};
use crate::slice::DirectorySlice;
use std::collections::HashMap;
use ziv_common::config::SystemConfig;
use ziv_common::{BankId, CoreId, LineAddr};

/// Directory eviction handling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirectoryMode {
    /// Traditional protocol: a directory eviction back-invalidates the
    /// privately cached copies of the tracked block (Section III-F).
    Mesi,
    /// ZeroDEV integration: evicted entries continue to be tracked, so no
    /// directory-eviction back-invalidations are generated. Functionally
    /// modeled with an unbounded spill map (see DESIGN.md §5.4).
    ZeroDev,
}

/// An entry evicted from the finite directory structure under
/// [`DirectoryMode::Mesi`]; the cache hierarchy must back-invalidate its
/// sharers and, if it tracked a relocated block, invalidate that block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedEntry {
    /// The block the entry was tracking.
    pub line: LineAddr,
    /// The entry's final state.
    pub state: DirEntryState,
}

/// Aggregate directory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Entries allocated.
    pub allocations: u64,
    /// Entries evicted from the finite structure (MESI mode).
    pub evictions: u64,
    /// Entries spilled (ZeroDEV mode).
    pub spills: u64,
    /// Entries freed because the last private copy left.
    pub frees: u64,
}

/// Outcome of removing a core from a block's sharer set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalOutcome {
    /// The block had no directory entry (e.g. already back-invalidated).
    NotTracked,
    /// Other cores still hold the block.
    StillShared,
    /// `core` held the last private copy; the entry has been freed and
    /// its final state is returned (the ZIV controller checks
    /// `state.relocated` to invalidate the relocated LLC block,
    /// Section III-C2).
    LastCopy(DirEntryState),
}

/// The sparse directory: per-bank slices plus mode handling.
#[derive(Debug)]
pub struct SparseDirectory {
    slices: Vec<DirectorySlice>,
    mode: DirectoryMode,
    /// ZeroDEV's conceptual unbounded tracking of entries evicted from
    /// the finite structure.
    spill: HashMap<LineAddr, DirEntryState>,
    banks: usize,
    stats: DirectoryStats,
}

impl SparseDirectory {
    /// Builds the directory for a system configuration (geometry per
    /// Section III-A / [`SystemConfig::dir_slice_geometry`]).
    pub fn new(cfg: &SystemConfig, mode: DirectoryMode) -> Self {
        let geom = cfg.dir_slice_geometry();
        let bank_shift = cfg.llc.banks.trailing_zeros();
        let slices = (0..cfg.llc.banks)
            .map(|_| DirectorySlice::new(geom, bank_shift))
            .collect();
        SparseDirectory {
            slices,
            mode,
            spill: HashMap::new(),
            banks: cfg.llc.banks,
            stats: DirectoryStats::default(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> DirectoryMode {
        self.mode
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    #[inline]
    fn bank_of(&self, line: LineAddr) -> BankId {
        BankId::new((line.raw() & (self.banks as u64 - 1)) as usize)
    }

    /// Read-only lookup of the state tracking `line` (slice, then spill).
    pub fn probe(&self, line: LineAddr) -> Option<&DirEntryState> {
        let bank = self.bank_of(line);
        if let Some((set, way)) = self.slices[bank.index()].probe(line) {
            return Some(self.slices[bank.index()].state(set, way));
        }
        self.spill.get(&line)
    }

    /// Mutable lookup of the state tracking `line`.
    pub fn probe_mut(&mut self, line: LineAddr) -> Option<&mut DirEntryState> {
        let bank = self.bank_of(line);
        if let Some((set, way)) = self.slices[bank.index()].probe(line) {
            return Some(self.slices[bank.index()].state_mut(set, way));
        }
        self.spill.get_mut(&line)
    }

    /// The central question of every proposal in the paper: is this block
    /// resident in any private cache? Exact, because the directory is
    /// kept up-to-date by eviction notices.
    #[inline]
    pub fn is_privately_cached(&self, line: LineAddr) -> bool {
        self.probe(line).is_some_and(|s| !s.sharers.is_empty())
    }

    /// Where `line`'s relocated LLC copy lives, if it is relocated.
    pub fn relocated_location(&self, line: LineAddr) -> Option<LlcLocation> {
        self.probe(line).and_then(|s| s.relocated)
    }

    /// Records a fill of `line` into `core`'s private caches: adds the
    /// sharer to an existing entry, or allocates a new one. A new
    /// allocation may evict another entry (MESI mode), which the caller
    /// must back-invalidate.
    pub fn record_fill(&mut self, line: LineAddr, core: CoreId) -> Option<EvictedEntry> {
        if let Some(state) = self.probe_mut(line) {
            state.sharers.insert(core);
            return None;
        }
        self.allocate(line, core)
    }

    /// Allocates a fresh entry for `line` filled by `core`.
    ///
    /// # Panics
    ///
    /// Panics if `line` is already tracked (use
    /// [`SparseDirectory::record_fill`] for the general path).
    pub fn allocate(&mut self, line: LineAddr, core: CoreId) -> Option<EvictedEntry> {
        assert!(self.probe(line).is_none(), "allocate() on a tracked line");
        let bank = self.bank_of(line);
        self.stats.allocations += 1;
        let (_, _, evicted) = self.slices[bank.index()].allocate(
            line,
            DirEntryState::for_fill(core),
            bank.index() as u64,
        );
        let (ev_line, ev_state) = evicted?;
        match self.mode {
            DirectoryMode::Mesi => {
                self.stats.evictions += 1;
                Some(EvictedEntry {
                    line: ev_line,
                    state: ev_state,
                })
            }
            DirectoryMode::ZeroDev => {
                self.stats.spills += 1;
                self.spill.insert(ev_line, ev_state);
                None
            }
        }
    }

    /// Removes `core` from `line`'s sharer set (a private-cache eviction
    /// notice or writeback reached the home slice). Frees the entry when
    /// the last copy leaves, per Section III-C2.
    pub fn remove_sharer(&mut self, line: LineAddr, core: CoreId) -> RemovalOutcome {
        let bank = self.bank_of(line);
        if let Some((set, way)) = self.slices[bank.index()].probe(line) {
            let state = self.slices[bank.index()].state_mut(set, way);
            if state.remove_core(core) {
                let final_state = *state;
                self.slices[bank.index()].free(line);
                self.stats.frees += 1;
                return RemovalOutcome::LastCopy(final_state);
            }
            return RemovalOutcome::StillShared;
        }
        if let Some(state) = self.spill.get_mut(&line) {
            if state.remove_core(core) {
                let final_state = *state;
                self.spill.remove(&line);
                self.stats.frees += 1;
                return RemovalOutcome::LastCopy(final_state);
            }
            return RemovalOutcome::StillShared;
        }
        RemovalOutcome::NotTracked
    }

    /// Frees the entry tracking `line` regardless of its sharer count —
    /// the back-invalidation path, where every private copy has just been
    /// forcefully invalidated. Returns the entry's final state.
    pub fn free_line(&mut self, line: LineAddr) -> Option<DirEntryState> {
        let bank = self.bank_of(line);
        if let Some(state) = self.slices[bank.index()].free(line) {
            self.stats.frees += 1;
            return Some(state);
        }
        let state = self.spill.remove(&line);
        if state.is_some() {
            self.stats.frees += 1;
        }
        state
    }

    /// Marks `line` as relocated to `loc` (or clears it with `None`).
    ///
    /// # Panics
    ///
    /// Panics if `line` has no directory entry: only privately cached
    /// blocks are ever relocated (the ZIV invariant).
    pub fn set_relocated(&mut self, line: LineAddr, loc: Option<LlcLocation>) {
        let state = self
            .probe_mut(line)
            .expect("relocating a block that is not privately cached");
        state.relocated = loc;
    }

    /// Every tracked block and its state — finite slices plus the
    /// ZeroDEV spill. This is the directory side of the audit walk
    /// (directory → private-cache consistency); order is deterministic
    /// for the slices and unspecified for the spill.
    pub fn iter_entries(&self) -> Vec<(LineAddr, DirEntryState)> {
        let mut out = Vec::with_capacity(self.occupancy());
        for (b, slice) in self.slices.iter().enumerate() {
            out.extend(slice.entries(b as u64));
        }
        out.extend(self.spill.iter().map(|(l, s)| (*l, *s)));
        out
    }

    /// Number of tracked blocks (finite structure + spill).
    pub fn occupancy(&self) -> usize {
        self.slices.iter().map(|s| s.occupancy()).sum::<usize>() + self.spill.len()
    }

    /// Number of spilled entries (ZeroDEV diagnostics).
    pub fn spill_occupancy(&self) -> usize {
        self.spill.len()
    }

    /// Per-bank occupancy of the finite structure (spill excluded) —
    /// the observability layer's end-of-run directory-pressure summary.
    pub fn slice_occupancies(&self) -> Vec<usize> {
        self.slices.iter().map(|s| s.occupancy()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::config::DirRatio;

    fn small_cfg() -> SystemConfig {
        // Tiny directory so eviction paths are easy to trigger.
        SystemConfig::scaled().with_dir_ratio(DirRatio::Quarter)
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn fill_then_presence() {
        let mut d = SparseDirectory::new(&small_cfg(), DirectoryMode::Mesi);
        let l = LineAddr::new(0x40);
        assert!(!d.is_privately_cached(l));
        assert!(d.record_fill(l, c(0)).is_none());
        assert!(d.is_privately_cached(l));
        assert_eq!(d.occupancy(), 1);
    }

    #[test]
    fn second_sharer_reuses_entry() {
        let mut d = SparseDirectory::new(&small_cfg(), DirectoryMode::Mesi);
        let l = LineAddr::new(0x40);
        d.record_fill(l, c(0));
        d.record_fill(l, c(1));
        assert_eq!(d.occupancy(), 1);
        assert_eq!(d.probe(l).unwrap().sharers.count(), 2);
    }

    #[test]
    fn last_copy_frees_entry() {
        let mut d = SparseDirectory::new(&small_cfg(), DirectoryMode::Mesi);
        let l = LineAddr::new(0x40);
        d.record_fill(l, c(0));
        d.record_fill(l, c(1));
        assert_eq!(d.remove_sharer(l, c(0)), RemovalOutcome::StillShared);
        assert!(matches!(
            d.remove_sharer(l, c(1)),
            RemovalOutcome::LastCopy(_)
        ));
        assert!(!d.is_privately_cached(l));
        assert_eq!(d.stats().frees, 1);
    }

    #[test]
    fn untracked_removal_reports_not_tracked() {
        let mut d = SparseDirectory::new(&small_cfg(), DirectoryMode::Mesi);
        assert_eq!(
            d.remove_sharer(LineAddr::new(1), c(0)),
            RemovalOutcome::NotTracked
        );
    }

    #[test]
    fn mesi_mode_reports_evictions() {
        let cfg = small_cfg();
        let mut d = SparseDirectory::new(&cfg, DirectoryMode::Mesi);
        let geom = cfg.dir_slice_geometry();
        // Flood one slice set: lines homed at bank 0 mapping to slice set 0.
        let mut evicted = 0;
        for i in 0..(geom.ways as u64 + 4) {
            let line = LineAddr::new(i * (geom.sets as u64) * cfg.llc.banks as u64);
            if d.record_fill(line, c(0)).is_some() {
                evicted += 1;
            }
        }
        assert_eq!(evicted, 4);
        assert_eq!(d.stats().evictions, 4);
    }

    #[test]
    fn zerodev_mode_spills_instead_of_evicting() {
        let cfg = small_cfg();
        let mut d = SparseDirectory::new(&cfg, DirectoryMode::ZeroDev);
        let geom = cfg.dir_slice_geometry();
        for i in 0..(geom.ways as u64 + 4) {
            let line = LineAddr::new(i * (geom.sets as u64) * cfg.llc.banks as u64);
            assert!(
                d.record_fill(line, c(0)).is_none(),
                "ZeroDEV never back-invalidates"
            );
        }
        assert_eq!(d.stats().spills, 4);
        assert_eq!(d.spill_occupancy(), 4);
        // Spilled entries are still tracked.
        let first = LineAddr::new(0);
        assert!(d.is_privately_cached(first));
        assert!(matches!(
            d.remove_sharer(first, c(0)),
            RemovalOutcome::LastCopy(_)
        ));
    }

    #[test]
    fn relocated_state_round_trips() {
        let mut d = SparseDirectory::new(&small_cfg(), DirectoryMode::Mesi);
        let l = LineAddr::new(0x99);
        d.record_fill(l, c(3));
        let loc = LlcLocation {
            bank: ziv_common::BankId::new(1),
            set: 7,
            way: 2,
        };
        d.set_relocated(l, Some(loc));
        assert_eq!(d.relocated_location(l), Some(loc));
        d.set_relocated(l, None);
        assert_eq!(d.relocated_location(l), None);
    }

    #[test]
    #[should_panic(expected = "not privately cached")]
    fn relocating_untracked_line_panics() {
        let mut d = SparseDirectory::new(&small_cfg(), DirectoryMode::Mesi);
        d.set_relocated(LineAddr::new(5), None);
    }

    #[test]
    fn slice_occupancies_sum_to_finite_occupancy() {
        let mut d = SparseDirectory::new(&small_cfg(), DirectoryMode::Mesi);
        // Lines 0 and 1 land in different banks (low-order interleave).
        d.record_fill(LineAddr::new(0), c(0));
        d.record_fill(LineAddr::new(1), c(1));
        let per_bank = d.slice_occupancies();
        assert_eq!(per_bank.len(), small_cfg().llc.banks);
        assert_eq!(per_bank.iter().sum::<usize>(), d.occupancy());
        assert_eq!(per_bank.iter().filter(|&&o| o > 0).count(), 2);
    }

    #[test]
    fn dirty_ownership_cleared_on_owner_eviction() {
        let mut d = SparseDirectory::new(&small_cfg(), DirectoryMode::Mesi);
        let l = LineAddr::new(0x123);
        d.record_fill(l, c(0));
        d.probe_mut(l).unwrap().set_dirty_owner(c(0));
        d.record_fill(l, c(1));
        assert_eq!(d.remove_sharer(l, c(0)), RemovalOutcome::StillShared);
        assert_eq!(d.probe(l).unwrap().dirty_owner, None);
    }
}
