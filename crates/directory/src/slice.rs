//! One sparse-directory slice: the tagged set-associative structure
//! co-located with an LLC bank, tracking every privately cached block
//! whose home is that bank.

use crate::entry::DirEntryState;
use ziv_cache::SetAssocArray;
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::{CacheGeometry, LineAddr};
use ziv_replacement::{AccessCtx, Nru, ReplacementPolicy};

/// A directory slice with Table I's 1-bit NRU replacement.
#[derive(Debug)]
pub struct DirectorySlice {
    array: SetAssocArray<DirEntryState>,
    nru: Nru,
    /// Right-shift applied to line addresses before set indexing (the
    /// bank-interleaving bits, which are constant within a slice).
    bank_shift: u32,
    /// Reusable NRU victim-order buffer for [`DirectorySlice::allocate`]
    /// (directory allocations happen on every private fill of an
    /// untracked line, so this is per-access state).
    rank_buf: Vec<WayIdx>,
}

/// Neutral context for the NRU hooks (NRU ignores everything but the
/// touched way).
fn nru_ctx() -> AccessCtx {
    AccessCtx::demand(LineAddr::new(0), 0, ziv_common::CoreId::new(0), 0, 0)
}

impl DirectorySlice {
    /// Creates an empty slice of the given geometry; `bank_shift` is
    /// log2 of the LLC bank count.
    pub fn new(geom: CacheGeometry, bank_shift: u32) -> Self {
        DirectorySlice {
            array: SetAssocArray::new(geom),
            nru: Nru::new(geom),
            bank_shift,
            rank_buf: Vec::new(),
        }
    }

    /// The slice's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.array.geometry()
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> SetIdx {
        let within = line.raw() >> self.bank_shift;
        (within & (self.geometry().sets as u64 - 1)) as SetIdx
    }

    #[inline]
    fn tag_of(&self, line: LineAddr) -> u64 {
        (line.raw() >> self.bank_shift) >> self.geometry().sets.trailing_zeros()
    }

    /// Reconstructs the line tracked at `(set, way)`.
    pub fn line_at(&self, set: SetIdx, way: WayIdx, bank_index: u64) -> LineAddr {
        let tag = self.array.tag(set, way);
        let within = (tag << self.geometry().sets.trailing_zeros()) | set as u64;
        LineAddr::new((within << self.bank_shift) | bank_index)
    }

    /// Looks up the entry tracking `line` without touching NRU state
    /// (pure query — used by presence checks on behalf of QBS/SHARP/ZIV
    /// properties).
    pub fn probe(&self, line: LineAddr) -> Option<(SetIdx, WayIdx)> {
        let set = self.set_of(line);
        self.array.lookup(set, self.tag_of(line)).map(|w| (set, w))
    }

    /// Looks up `line` and touches the entry's NRU bit (a demand lookup).
    pub fn lookup(&mut self, line: LineAddr) -> Option<(SetIdx, WayIdx)> {
        let hit = self.probe(line);
        if let Some((set, way)) = hit {
            self.nru.on_hit(set, way, &nru_ctx());
        }
        hit
    }

    /// State of the entry at `(set, way)`.
    pub fn state(&self, set: SetIdx, way: WayIdx) -> &DirEntryState {
        self.array.state(set, way)
    }

    /// Mutable state of the entry at `(set, way)`.
    pub fn state_mut(&mut self, set: SetIdx, way: WayIdx) -> &mut DirEntryState {
        self.array.state_mut(set, way)
    }

    /// Allocates an entry for `line`. If the target set is full, a
    /// non-busy NRU victim is evicted and returned as
    /// `(victim_line_within_slice_tag_bits, victim_state)` — the caller
    /// owns the consequences (back-invalidation, or ZeroDEV spill).
    ///
    /// Returns `(set, way, evicted)`.
    ///
    /// # Panics
    ///
    /// Panics if `line` already has an entry (callers must check first),
    /// or if every way in the set is busy (cannot happen: at most one
    /// relocation is in flight per bank in this model).
    pub fn allocate(
        &mut self,
        line: LineAddr,
        state: DirEntryState,
        bank_index: u64,
    ) -> (SetIdx, WayIdx, Option<(LineAddr, DirEntryState)>) {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        // Fused walk: the duplicate-entry check and the invalid-way scan
        // share one O(ways) pass over the set.
        let probe = self.array.lookup_or_invalid(set, tag);
        assert!(
            probe.hit.is_none(),
            "allocate() on a line that already has a directory entry"
        );
        if let Some(way) = probe.invalid {
            self.array.fill(set, way, tag, state);
            self.nru.on_fill(set, way, &nru_ctx());
            return (set, way, None);
        }
        // Evict an NRU victim, skipping busy entries. The victim-order
        // buffer is slice-owned scratch: allocations happen on every
        // private fill of an untracked line, so no per-call `Vec`.
        let mut order = std::mem::take(&mut self.rank_buf);
        self.nru.rank(set, &nru_ctx(), &mut order);
        let victim = order
            .iter()
            .copied()
            .find(|&w| !self.array.state(set, w).busy)
            .expect("all directory ways busy");
        self.rank_buf = order;
        let evicted_line = self.line_at(set, victim, bank_index);
        let (_, old_state) = self
            .array
            .fill(set, victim, tag, state)
            .expect("victim was valid");
        self.nru.on_evict(set, victim);
        self.nru.on_fill(set, victim, &nru_ctx());
        (set, victim, Some((evicted_line, old_state)))
    }

    /// Frees the entry tracking `line`; returns its state.
    pub fn free(&mut self, line: LineAddr) -> Option<DirEntryState> {
        let (set, way) = self.probe(line)?;
        self.nru.on_evict(set, way);
        self.array.invalidate(set, way).map(|(_, s)| s)
    }

    /// Number of valid entries (for occupancy stats and tests).
    pub fn occupancy(&self) -> usize {
        self.array.total_valid()
    }

    /// Every valid entry in the slice as `(tracked line, state)` — the
    /// audit walk. `bank_index` is needed to reconstruct full line
    /// addresses from stored tags.
    pub fn entries(&self, bank_index: u64) -> Vec<(LineAddr, DirEntryState)> {
        let mut out = Vec::with_capacity(self.array.total_valid());
        for set in 0..self.geometry().sets {
            for w in self.array.iter_set(set) {
                out.push((self.line_at(set, w.way, bank_index), *w.state));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::CoreId;

    fn slice() -> DirectorySlice {
        // 4 sets x 2 ways, 8 banks (shift 3).
        DirectorySlice::new(CacheGeometry::new(4, 2), 3)
    }

    /// A line homed at bank 0 whose slice set is `set` and tag is `tag`.
    fn line_for(set: u64, tag: u64) -> LineAddr {
        LineAddr::new((tag << 2 | set) << 3)
    }

    #[test]
    fn allocate_then_probe() {
        let mut s = slice();
        let l = line_for(1, 7);
        let (set, way, ev) = s.allocate(l, DirEntryState::for_fill(CoreId::new(0)), 0);
        assert!(ev.is_none());
        assert_eq!(s.probe(l), Some((set, way)));
        assert_eq!(s.occupancy(), 1);
    }

    #[test]
    fn line_at_reconstructs_address() {
        let mut s = slice();
        let l = line_for(2, 5);
        let (set, way, _) = s.allocate(l, DirEntryState::default(), 0);
        assert_eq!(s.line_at(set, way, 0), l);
    }

    #[test]
    fn full_set_evicts_nru_victim() {
        let mut s = slice();
        let a = line_for(1, 1);
        let b = line_for(1, 2);
        let c = line_for(1, 3);
        s.allocate(a, DirEntryState::default(), 0);
        s.allocate(b, DirEntryState::default(), 0);
        // Touch b so a becomes the NRU victim.
        s.lookup(b);
        let (_, _, ev) = s.allocate(c, DirEntryState::default(), 0);
        let (ev_line, _) = ev.expect("must evict");
        assert_eq!(ev_line, a);
        assert_eq!(s.probe(a), None);
        assert!(s.probe(b).is_some());
        assert!(s.probe(c).is_some());
    }

    #[test]
    fn busy_entries_are_not_evicted() {
        let mut s = slice();
        let a = line_for(1, 1);
        let b = line_for(1, 2);
        let c = line_for(1, 3);
        s.allocate(a, DirEntryState::default(), 0);
        s.allocate(b, DirEntryState::default(), 0);
        let (set, way) = s.probe(a).unwrap();
        s.state_mut(set, way).busy = true;
        s.lookup(b); // b is recently used; NRU would prefer a, but a is busy
        let (_, _, ev) = s.allocate(c, DirEntryState::default(), 0);
        assert_eq!(ev.unwrap().0, b);
        assert!(s.probe(a).is_some());
    }

    #[test]
    fn free_removes_entry() {
        let mut s = slice();
        let l = line_for(0, 9);
        s.allocate(l, DirEntryState::for_fill(CoreId::new(1)), 0);
        let st = s.free(l).unwrap();
        assert!(st.sharers.contains(CoreId::new(1)));
        assert_eq!(s.probe(l), None);
        assert!(s.free(l).is_none());
    }

    #[test]
    #[should_panic(expected = "already has a directory entry")]
    fn double_allocate_panics() {
        let mut s = slice();
        let l = line_for(0, 1);
        s.allocate(l, DirEntryState::default(), 0);
        s.allocate(l, DirEntryState::default(), 0);
    }
}
